"""Tests for repro.rf.antenna: ULAs and anchor geometry."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rf.antenna import (
    HALF_WAVELENGTH_M,
    Anchor,
    default_anchor_ring,
)
from repro.utils.geometry2d import Point


class TestAnchor:
    def test_defaults(self):
        anchor = Anchor(position=Point(0, 0))
        assert anchor.num_antennas == 4
        assert anchor.spacing_m == pytest.approx(HALF_WAVELENGTH_M)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            Anchor(position=Point(0, 0), num_antennas=0)
        with pytest.raises(ConfigurationError):
            Anchor(position=Point(0, 0), spacing_m=0)

    def test_elements_centred(self):
        anchor = Anchor(position=Point(1, 2), num_antennas=4, spacing_m=0.1)
        positions = anchor.antenna_array()
        centroid = positions.mean(axis=0)
        assert centroid[0] == pytest.approx(1.0)
        assert centroid[1] == pytest.approx(2.0)

    def test_element_spacing(self):
        anchor = Anchor(position=Point(0, 0), num_antennas=4, spacing_m=0.1)
        positions = anchor.antenna_array()
        gaps = np.linalg.norm(np.diff(positions, axis=0), axis=1)
        assert np.allclose(gaps, 0.1)

    def test_array_axis_perpendicular_to_boresight(self):
        anchor = Anchor(position=Point(0, 0), boresight_rad=0.7)
        axis = anchor.array_axis()
        boresight = Point(math.cos(0.7), math.sin(0.7))
        assert axis.dot(boresight) == pytest.approx(0.0, abs=1e-12)

    def test_antenna_index_bounds(self):
        anchor = Anchor(position=Point(0, 0), num_antennas=2)
        with pytest.raises(ConfigurationError):
            anchor.antenna_position(2)

    def test_angle_to_boresight_zero(self):
        anchor = Anchor(position=Point(0, 0), boresight_rad=0.0)
        assert anchor.angle_to(Point(5, 0)) == pytest.approx(0.0)

    def test_angle_to_side(self):
        anchor = Anchor(position=Point(0, 0), boresight_rad=0.0)
        # Target along +array axis (which is +y for boresight 0).
        assert anchor.angle_to(Point(0, 3)) == pytest.approx(math.pi / 2)

    def test_angle_wraps(self):
        anchor = Anchor(position=Point(0, 0), boresight_rad=math.pi)
        angle = anchor.angle_to(Point(5, 0.1))
        assert -math.pi <= angle <= math.pi


class TestTruncated:
    def test_keeps_physical_positions(self):
        anchor = Anchor(position=Point(0, 0), num_antennas=4, spacing_m=0.1)
        truncated = anchor.truncated(3)
        for j in range(3):
            original = anchor.antenna_position(j)
            kept = truncated.antenna_position(j)
            assert kept.x == pytest.approx(original.x, abs=1e-12)
            assert kept.y == pytest.approx(original.y, abs=1e-12)

    def test_invalid_truncation(self):
        anchor = Anchor(position=Point(0, 0), num_antennas=4)
        with pytest.raises(ConfigurationError):
            anchor.truncated(5)
        with pytest.raises(ConfigurationError):
            anchor.truncated(0)

    def test_with_antennas_keeps_centre(self):
        anchor = Anchor(position=Point(2, 3), num_antennas=4)
        redesigned = anchor.with_antennas(3)
        assert redesigned.position == Point(2, 3)
        assert redesigned.num_antennas == 3


class TestAnchorRing:
    def test_four_anchors_on_edges(self):
        ring = default_anchor_ring(6.0, 5.0, origin=Point(-3, -2))
        assert len(ring) == 4
        assert [a.name for a in ring] == ["AP1", "AP2", "AP3", "AP4"]
        south, east, north, west = ring
        assert south.position.y == pytest.approx(-1.9)
        assert east.position.x == pytest.approx(2.9)
        assert north.position.y == pytest.approx(2.9)
        assert west.position.x == pytest.approx(-2.9)

    def test_anchors_face_inward(self):
        ring = default_anchor_ring(6.0, 5.0, origin=Point(-3, -2))
        centre = Point(0.0, 0.5)
        for anchor in ring:
            assert abs(anchor.angle_to(centre)) < math.pi / 2

    def test_invalid_room(self):
        with pytest.raises(ConfigurationError):
            default_anchor_ring(0, 5)

    def test_antenna_count_propagates(self):
        ring = default_anchor_ring(6.0, 5.0, num_antennas=3)
        assert all(a.num_antennas == 3 for a in ring)
