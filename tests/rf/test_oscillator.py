"""Tests for repro.rf.oscillator: the per-retune random phase model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rf.oscillator import Oscillator


class TestOscillator:
    def test_retune_changes_phase(self):
        osc = Oscillator(rng=1)
        first = osc.phase_offset()
        osc.retune()
        second = osc.phase_offset()
        assert first != second

    def test_phase_uniform_range(self):
        osc = Oscillator(rng=2)
        phases = [osc.retune() for _ in range(500)]
        assert min(phases) >= -np.pi
        assert max(phases) <= np.pi
        # Roughly uniform: mean near 0, spread near pi/sqrt(3).
        assert abs(np.mean(phases)) < 0.3
        assert np.std(phases) == pytest.approx(np.pi / np.sqrt(3), rel=0.15)

    def test_stable_without_drift(self):
        osc = Oscillator(rng=3, drift_std_rad_per_s=0.0)
        assert osc.phase_offset(1.0) == osc.phase_offset(2.0)

    def test_drift_perturbs(self):
        osc = Oscillator(rng=4, drift_std_rad_per_s=10.0)
        base = osc.phase_offset(0.0)
        later = osc.phase_offset(1e-3)
        assert later != base

    def test_drift_scales_with_time(self):
        draws_short, draws_long = [], []
        for seed in range(200):
            osc = Oscillator(rng=seed, drift_std_rad_per_s=5.0)
            base = osc.phase_offset(0.0)
            draws_short.append(osc.phase_offset(1e-4) - base)
            draws_long.append(osc.phase_offset(1e-2) - base)
        assert np.std(draws_long) > np.std(draws_short) * 3

    def test_negative_elapsed_rejected(self):
        osc = Oscillator(rng=5)
        with pytest.raises(ConfigurationError):
            osc.phase_offset(-1.0)

    def test_negative_drift_rejected(self):
        with pytest.raises(ConfigurationError):
            Oscillator(drift_std_rad_per_s=-1.0)

    def test_phasor_unit_magnitude(self):
        osc = Oscillator(rng=6)
        assert abs(osc.phasor()) == pytest.approx(1.0)

    def test_deterministic_given_seed(self):
        a = Oscillator(rng=7).phase_offset()
        b = Oscillator(rng=7).phase_offset()
        assert a == b
