"""Tests for repro.rf.noise: AWGN and channel-estimation noise."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rf.noise import (
    add_awgn,
    channel_estimation_noise,
    measure_snr_db,
    snr_to_noise_std,
)


class TestAwgn:
    def test_snr_achieved(self, rng):
        signal = np.exp(1j * rng.uniform(0, 2 * np.pi, 200_000))
        noisy = add_awgn(signal, snr_db=10.0, rng=rng)
        assert measure_snr_db(signal, noisy) == pytest.approx(10.0, abs=0.2)

    def test_zero_noise_at_high_snr(self, rng):
        signal = np.ones(100, dtype=complex)
        noisy = add_awgn(signal, snr_db=200.0, rng=rng)
        assert np.allclose(noisy, signal, atol=1e-8)

    def test_empty_signal(self, rng):
        assert add_awgn(np.array([], dtype=complex), 10.0, rng).size == 0

    def test_deterministic_with_seed(self):
        signal = np.ones(32, dtype=complex)
        a = add_awgn(signal, 10.0, rng=9)
        b = add_awgn(signal, 10.0, rng=9)
        assert np.array_equal(a, b)

    def test_noise_std_formula(self):
        std = snr_to_noise_std(signal_power=1.0, snr_db=0.0)
        assert std == pytest.approx(np.sqrt(0.5))

    def test_negative_power_rejected(self):
        with pytest.raises(ConfigurationError):
            snr_to_noise_std(-1.0, 10.0)


class TestChannelEstimationNoise:
    def test_averaging_gain_reduces_noise(self, rng):
        channels = np.ones(50_000, dtype=complex)
        noisy_1 = channel_estimation_noise(
            channels, snr_db=10.0, averaging_gain=1.0, rng=1
        )
        noisy_64 = channel_estimation_noise(
            channels, snr_db=10.0, averaging_gain=64.0, rng=1
        )
        err_1 = np.std(noisy_1 - channels)
        err_64 = np.std(noisy_64 - channels)
        assert err_64 == pytest.approx(err_1 / 8.0, rel=0.1)

    def test_reference_power_fixed(self, rng):
        weak = np.full(10_000, 0.01 + 0j)
        noisy = channel_estimation_noise(
            weak, snr_db=20.0, rng=rng, reference_power=1.0
        )
        # Noise is relative to the reference, so the weak channel drowns.
        relative_error = np.std(noisy - weak) / 0.01
        assert relative_error > 1.0

    def test_invalid_gain(self):
        with pytest.raises(ConfigurationError):
            channel_estimation_noise(np.ones(3, complex), 10.0, averaging_gain=0)

    def test_empty(self, rng):
        out = channel_estimation_noise(np.array([], complex), 10.0, rng=rng)
        assert out.size == 0


class TestMeasureSnr:
    def test_infinite_for_identical(self):
        signal = np.ones(10, complex)
        assert measure_snr_db(signal, signal) == float("inf")

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            measure_snr_db(np.ones(3, complex), np.ones(4, complex))
