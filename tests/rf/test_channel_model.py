"""Tests for repro.rf.channel_model: the geometry -> channel bridge."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import SPEED_OF_LIGHT
from repro.rf.antenna import Anchor
from repro.rf.channel_model import ChannelSimulator
from repro.rf.environment import Environment
from repro.rf.imaging import ImagingConfig
from repro.rf.materials import METAL
from repro.utils.geometry2d import Point


@pytest.fixture()
def simulator():
    env = Environment(width=6.0, height=5.0, origin=Point(-3.0, -2.0))
    return ChannelSimulator(env)


class TestChannel:
    def test_free_space_phase(self):
        """In an anechoic setting the phase matches Eq. 1 exactly."""
        env = Environment(width=6.0, height=5.0, origin=Point(-3.0, -2.0))
        # min_gain=0.3 prunes every wall reflection for this pair but
        # keeps the direct path (gain 0.5), emulating free space.
        sim = ChannelSimulator(
            env, imaging=ImagingConfig(include_scatter=False, min_gain=0.3)
        )
        tx, rx = Point(-1, 0), Point(1, 0)
        f = 2.44e9
        h = sim.channel(tx, rx, f)
        expected = (1.0 / 2.0) * np.exp(
            -2j * np.pi * f * 2.0 / SPEED_OF_LIGHT
        )
        assert complex(h) == pytest.approx(expected, rel=1e-9)

    def test_reciprocity(self, simulator):
        tx, rx = Point(-1.2, 0.3), Point(1.7, 1.1)
        f = np.array([2.41e9, 2.45e9])
        forward = simulator.channel(tx, rx, f)
        backward = simulator.channel(rx, tx, f)
        assert np.allclose(forward, backward)

    def test_path_cache_hit(self, simulator):
        tx, rx = Point(0, 0), Point(1, 1)
        first = simulator.paths(tx, rx)
        second = simulator.paths(tx, rx)
        assert first is second

    def test_cache_cleared(self, simulator):
        tx, rx = Point(0, 0), Point(1, 1)
        first = simulator.paths(tx, rx)
        simulator.clear_cache()
        assert simulator.paths(tx, rx) is not first

    def test_frequency_selectivity_with_multipath(self, simulator):
        simulator.environment.add_reflector(
            Point(-1, 1.5), Point(1, 1.5), METAL
        )
        simulator.clear_cache()
        freqs = np.linspace(2.40e9, 2.48e9, 41)
        h = simulator.channel(Point(-1, 0), Point(1, 0), freqs)
        magnitudes = np.abs(h)
        assert magnitudes.max() / magnitudes.min() > 1.05


class TestAnchorChannels:
    def test_channels_to_anchor_shape(self, simulator):
        anchor = Anchor(position=Point(2.9, 0.5), num_antennas=4)
        freqs = [2.41e9, 2.43e9, 2.47e9]
        h = simulator.channels_to_anchor(Point(0, 0), anchor, freqs)
        assert h.shape == (4, 3)

    def test_anchor_to_anchor_uses_reference_antenna(self, simulator):
        a = Anchor(position=Point(-2.9, 0.5), num_antennas=4, name="a")
        b = Anchor(position=Point(2.9, 0.5), num_antennas=4, name="b")
        h = simulator.anchor_to_anchor(a, b, [2.44e9])
        direct = simulator.channel(
            a.antenna_position(0), b.antenna_position(0), 2.44e9
        )
        assert complex(h[0, 0]) == pytest.approx(complex(direct))

    def test_phase_gradient_encodes_angle(self, simulator):
        """Across a ULA the inter-element phase follows -2 pi l sin(theta)
        / lambda (Section 2.2, 'Measuring Angles')."""
        env = Environment(width=20.0, height=20.0, origin=Point(-10, -10))
        # min_gain above every wall-reflection gain: direct path only.
        sim = ChannelSimulator(
            env, imaging=ImagingConfig(include_scatter=False, min_gain=0.05)
        )
        anchor = Anchor(
            position=Point(0, 0), boresight_rad=0.0, num_antennas=4
        )
        f = 2.44e9
        wavelength = SPEED_OF_LIGHT / f
        theta = np.radians(25.0)
        # Far-field source at that angle (angle measured from boresight
        # towards the +array axis).  Elements with larger index sit
        # towards the +axis, hence closer to the source: the
        # inter-element phase step is *positive* (see
        # repro.core.steering.angle_spectrum for the convention note).
        direction = Point(np.cos(theta), np.sin(theta))
        source = Point(direction.x * 9.0, direction.y * 9.0)
        h = sim.channels_to_anchor(source, anchor, [f])[:, 0]
        steps = np.angle(h[1:] * np.conj(h[:-1]))
        expected = 2 * np.pi * anchor.spacing_m * np.sin(theta) / wavelength
        assert np.allclose(steps, expected, atol=0.05)


class TestRssi:
    def test_rssi_decreases_with_distance(self, simulator):
        near = simulator.rssi_dbm(Point(0, 0), Point(0.5, 0), 2.44e9)
        far = simulator.rssi_dbm(Point(0, 0), Point(2.5, 0), 2.44e9)
        assert near > far

    def test_tx_power_offset(self, simulator):
        base = simulator.rssi_dbm(Point(0, 0), Point(1, 0), 2.44e9)
        boosted = simulator.rssi_dbm(
            Point(0, 0), Point(1, 0), 2.44e9, tx_power_dbm=10.0
        )
        assert boosted == pytest.approx(base + 10.0)
