"""Tests for repro.rf.imaging: the image-method ray tracer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rf.environment import Environment
from repro.rf.imaging import ImagingConfig, trace_paths
from repro.rf.materials import GLASS, METAL, Material
from repro.rf.paths import PathKind, shortest_path
from repro.utils.geometry2d import Point

#: A mirror-perfect material to isolate specular behaviour.
PERFECT_MIRROR = Material(
    name="mirror",
    reflectivity=-1.0,
    scattering_fraction=0.0,
    scattering_spread_m=0.0,
    transmission=0.0,
)


@pytest.fixture()
def room():
    return Environment(width=6.0, height=5.0, origin=Point(-3.0, -2.0))


class TestConfig:
    def test_invalid_order(self):
        with pytest.raises(ConfigurationError):
            ImagingConfig(max_order=3)

    def test_invalid_min_gain(self):
        with pytest.raises(ConfigurationError):
            ImagingConfig(min_gain=-1)


class TestDirectPath:
    def test_direct_path_first_and_exact(self, room):
        tx, rx = Point(-1, 0), Point(2, 0)
        paths = trace_paths(room, tx, rx)
        direct = paths[0]
        assert direct.kind == PathKind.DIRECT
        assert direct.length_m == pytest.approx(3.0)
        assert abs(direct.gain) == pytest.approx(1.0 / 3.0)

    def test_direct_path_is_shortest(self, room):
        tx, rx = Point(-2, -1), Point(2, 2)
        paths = trace_paths(room, tx, rx)
        assert shortest_path(paths).kind == PathKind.DIRECT

    def test_obstructed_direct_attenuated(self, room):
        room.add_reflector(Point(0, -1.5), Point(0, 1.5), METAL)
        paths = trace_paths(room, Point(-1, 0), Point(1, 0))
        assert abs(paths[0].gain) < 1e-9 or paths[0].kind != PathKind.DIRECT


class TestSpecular:
    def test_wall_reflection_count(self, room):
        config = ImagingConfig(include_scatter=False)
        paths = trace_paths(room, Point(-1, 0), Point(1, 0), config)
        specular = [p for p in paths if p.kind == PathKind.SPECULAR]
        # All four walls see a valid bounce for an interior pair.
        assert len(specular) == 4

    def test_reflection_length_via_image(self, room):
        config = ImagingConfig(include_scatter=False)
        tx, rx = Point(-1, 0), Point(1, 0)
        paths = trace_paths(room, tx, rx, config)
        south = [p for p in paths if p.reflector_name == "wall-south"][0]
        # Image of tx across y = -2 is (-1, -4); distance to rx:
        expected = np.hypot(2.0, 4.0)
        assert south.length_m == pytest.approx(expected)

    def test_reflection_gain_includes_material(self, room):
        config = ImagingConfig(include_scatter=False)
        paths = trace_paths(room, Point(-1, 0), Point(1, 0), config)
        south = [p for p in paths if p.reflector_name == "wall-south"][0]
        expected = (
            abs(room.wall_material.specular_amplitude) / south.length_m
        )
        assert abs(south.gain) == pytest.approx(expected)

    def test_interior_mirror_adds_path(self, room):
        room.add_reflector(Point(-0.5, 1.0), Point(0.5, 1.0), PERFECT_MIRROR)
        config = ImagingConfig(include_scatter=False)
        paths = trace_paths(room, Point(-0.4, 0), Point(0.4, 0), config)
        names = {p.reflector_name for p in paths}
        assert "" in names or len(names) >= 5  # mirror contributes

    def test_no_reflection_when_bounce_misses_face(self, room):
        room.add_reflector(Point(2.0, 2.0), Point(2.5, 2.0), PERFECT_MIRROR)
        config = ImagingConfig(include_scatter=False)
        paths = trace_paths(room, Point(-2.5, -1.5), Point(-2.0, -1.5), config)
        assert not any(p.reflector_name == "mirror" for p in paths)

    def test_endpoint_on_face_line_skipped(self, room):
        # An anchor exactly on a wall must not create a degenerate bounce.
        config = ImagingConfig(include_scatter=False)
        paths = trace_paths(room, Point(0, -2.0), Point(0, 1.0), config)
        south = [p for p in paths if p.reflector_name == "wall-south"]
        assert south == []


class TestScatterClusters:
    def test_scatter_paths_present_for_rough_material(self, room):
        room.add_reflector(Point(-1, 1.5), Point(1, 1.5), METAL, name="m")
        paths = trace_paths(room, Point(-1, 0), Point(1, 0))
        scatter = [p for p in paths if p.kind == PathKind.SCATTER]
        assert len(scatter) >= 3

    def test_scatter_spread_in_length(self, room):
        room.add_reflector(Point(-1, 1.5), Point(1, 1.5), METAL, name="m")
        paths = trace_paths(room, Point(-1, 0), Point(1, 0))
        scatter = [
            p for p in paths
            if p.kind == PathKind.SCATTER and p.reflector_name == "m"
        ]
        lengths = [p.length_m for p in scatter]
        assert max(lengths) - min(lengths) > 0.0

    def test_scatter_weaker_than_specular(self, room):
        room.add_reflector(Point(-1, 1.5), Point(1, 1.5), METAL, name="m")
        paths = trace_paths(room, Point(-1, 0), Point(1, 0))
        specular = [
            p for p in paths
            if p.kind == PathKind.SPECULAR and p.reflector_name == "m"
        ][0]
        for p in paths:
            if p.kind == PathKind.SCATTER and p.reflector_name == "m":
                assert abs(p.gain) < abs(specular.gain)

    def test_scatter_disabled(self, room):
        room.add_reflector(Point(-1, 1.5), Point(1, 1.5), METAL)
        config = ImagingConfig(include_scatter=False)
        paths = trace_paths(room, Point(-1, 0), Point(1, 0), config)
        assert all(p.kind != PathKind.SCATTER for p in paths)


class TestSecondOrder:
    def test_second_order_paths_exist(self, room):
        config = ImagingConfig(max_order=2, include_scatter=False, min_gain=1e-6)
        paths1 = trace_paths(room, Point(-1, 0), Point(1, 0.3),
                             ImagingConfig(include_scatter=False, min_gain=1e-6))
        paths2 = trace_paths(room, Point(-1, 0), Point(1, 0.3), config)
        assert len(paths2) > len(paths1)

    def test_second_order_longer_than_first(self, room):
        config = ImagingConfig(max_order=2, include_scatter=False, min_gain=1e-6)
        paths = trace_paths(room, Point(-1, 0), Point(1, 0.3), config)
        double = [p for p in paths if "+" in p.reflector_name]
        single = [
            p for p in paths
            if p.kind == PathKind.SPECULAR and "+" not in p.reflector_name
        ]
        assert double, "no wall-wall bounces found"
        assert min(p.length_m for p in double) > min(
            p.length_m for p in single
        )


class TestPruning:
    def test_min_gain_prunes(self, room):
        strict = ImagingConfig(min_gain=0.2, include_scatter=False)
        paths = trace_paths(room, Point(-2.5, -1.5), Point(2.5, 2.5), strict)
        assert all(abs(p.gain) >= 0.2 for p in paths)
