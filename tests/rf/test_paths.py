"""Tests for repro.rf.paths: path phasors and channel synthesis (Eq. 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import SPEED_OF_LIGHT
from repro.rf.paths import (
    PathKind,
    PropagationPath,
    dominant_path,
    paths_to_channel,
    shortest_path,
    total_power,
)


def make_path(length, gain=1.0, kind=PathKind.DIRECT):
    return PropagationPath(length_m=length, gain=complex(gain), kind=kind)


class TestPhasor:
    def test_phase_matches_eq1(self):
        f = 2.44e9
        d = 3.0
        path = make_path(d, gain=1.0 / d)
        h = path.phasor(f)
        expected_phase = -2 * np.pi * f * d / SPEED_OF_LIGHT
        assert np.angle(h) == pytest.approx(
            np.angle(np.exp(1j * expected_phase))
        )
        assert abs(h) == pytest.approx(1.0 / 3.0)

    def test_delay(self):
        path = make_path(SPEED_OF_LIGHT)
        assert path.delay_s() == pytest.approx(1.0)

    def test_vectorised_over_frequency(self):
        path = make_path(2.0)
        freqs = np.array([2.40e9, 2.44e9, 2.48e9])
        h = path.phasor(freqs)
        assert h.shape == (3,)


class TestChannelSynthesis:
    def test_single_path(self):
        path = make_path(1.5, gain=0.5)
        h = paths_to_channel([path], 2.44e9)
        assert complex(h) == pytest.approx(complex(path.phasor(2.44e9)))

    def test_superposition(self):
        p1, p2 = make_path(1.0, 0.7), make_path(2.5, 0.3)
        f = np.array([2.41e9, 2.47e9])
        combined = paths_to_channel([p1, p2], f)
        assert np.allclose(combined, p1.phasor(f) + p2.phasor(f))

    def test_destructive_interference(self):
        f = 2.4e9
        wavelength = SPEED_OF_LIGHT / f
        p1 = make_path(10 * wavelength, 1.0)
        p2 = make_path(10.5 * wavelength, 1.0)
        h = paths_to_channel([p1, p2], f)
        assert abs(complex(h)) < 1e-6

    def test_phase_slope_encodes_distance(self):
        """The Section 2.2 'Measuring Distances' principle."""
        d = 4.2
        path = make_path(d)
        delta_f = 1e6
        freqs = np.array([2.4e9, 2.4e9 + delta_f])
        h = paths_to_channel([path], freqs)
        phase_step = np.angle(h[1] * np.conj(h[0]))
        expected = -2 * np.pi * delta_f * d / SPEED_OF_LIGHT
        assert phase_step == pytest.approx(expected, abs=1e-9)

    def test_empty_paths(self):
        h = paths_to_channel([], np.array([2.4e9, 2.41e9]))
        assert np.all(h == 0)

    def test_scalar_in_scalar_out(self):
        h = paths_to_channel([make_path(1.0)], 2.4e9)
        assert np.ndim(h) == 0


class TestSelectors:
    def test_dominant(self):
        paths = [make_path(1, 0.2), make_path(2, 0.9), make_path(3, 0.5)]
        assert dominant_path(paths).length_m == 2

    def test_shortest(self):
        paths = [make_path(5, 0.9), make_path(2, 0.1)]
        assert shortest_path(paths).length_m == 2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            dominant_path([])
        with pytest.raises(ValueError):
            shortest_path([])

    def test_total_power(self):
        paths = [make_path(1, 0.6), make_path(2, 0.8)]
        assert total_power(paths) == pytest.approx(1.0)
