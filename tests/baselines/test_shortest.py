"""Tests for repro.baselines.shortest: the Section 8.7 naive baseline."""

from __future__ import annotations

from repro.baselines.shortest import (
    ShortestDistanceLocalizer,
    shortest_distance_localizer,
)
from repro.core import BlocConfig


class TestConstruction:
    def test_dataclass_variant_forces_selection(self):
        localizer = ShortestDistanceLocalizer()
        assert localizer.config.selection == "shortest"

    def test_factory_forces_selection(self):
        localizer = shortest_distance_localizer()
        assert localizer.config.selection == "shortest"

    def test_factory_preserves_other_config(self):
        config = BlocConfig(grid_resolution_m=0.2)
        localizer = shortest_distance_localizer(config=config)
        assert localizer.config.grid_resolution_m == 0.2
        assert localizer.config.selection == "shortest"

    def test_locates(self, clean_observations):
        result = shortest_distance_localizer().locate(clean_observations)
        assert result.position is not None
