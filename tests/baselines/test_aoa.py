"""Tests for repro.baselines.aoa: the AoA-combining baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.aoa import AOA_MODES, AoaLocalizer
from repro.errors import ConfigurationError
from repro.sim import ChannelMeasurementModel
from repro.sim.testbed import open_room_testbed
from repro.utils.geometry2d import Point


@pytest.fixture(scope="module")
def clean_los_observations():
    testbed = open_room_testbed()
    model = ChannelMeasurementModel(
        testbed=testbed,
        seed=31,
        snr_db=40.0,
        oscillator_drift_std=0.0,
        calibration_error_m=0.0,
        element_phase_error_deg=0.0,
        element_gain_error_db=0.0,
    )
    return model.measure(Point(0.9, 0.7))


class TestConfig:
    def test_invalid_mode(self):
        with pytest.raises(ConfigurationError):
            AoaLocalizer(mode="magic")

    def test_invalid_resolution(self):
        with pytest.raises(ConfigurationError):
            AoaLocalizer(grid_resolution_m=0)

    def test_modes_registry(self):
        assert set(AOA_MODES) == {"triangulation", "spectrum"}


class TestAngles:
    def test_per_anchor_angles_near_geometry(self, clean_los_observations):
        obs = clean_los_observations
        result = AoaLocalizer().locate(obs)
        for anchor, estimated in zip(
            obs.anchors, result.per_anchor_angles_rad
        ):
            true_angle = anchor.angle_to(obs.ground_truth)
            assert abs(estimated - true_angle) < np.radians(8.0)


class TestTriangulation:
    def test_locates_in_los(self, clean_los_observations):
        result = AoaLocalizer().locate(clean_los_observations)
        error = (
            result.position - clean_los_observations.ground_truth
        ).norm()
        assert error < 0.5

    def test_estimate_clamped_to_bounds(self, clean_los_observations):
        localizer = AoaLocalizer(bounds=(-0.1, 0.1, -0.1, 0.1))
        result = localizer.locate(clean_los_observations)
        assert -0.1 <= result.position.x <= 0.1
        assert -0.1 <= result.position.y <= 0.1


class TestSpectrumMode:
    def test_locates_in_los(self, clean_los_observations):
        result = AoaLocalizer(mode="spectrum").locate(
            clean_los_observations
        )
        error = (
            result.position - clean_los_observations.ground_truth
        ).norm()
        assert error < 0.5

    def test_map_kept_only_on_request(self, clean_los_observations):
        localizer = AoaLocalizer(mode="spectrum")
        with_map = localizer.locate(clean_los_observations, keep_map=True)
        without = localizer.locate(clean_los_observations, keep_map=False)
        assert with_map.likelihood is not None
        assert without.likelihood is None

    def test_spectrum_mode_not_worse_than_triangulation_clean(
        self, clean_los_observations
    ):
        truth = clean_los_observations.ground_truth
        tri = AoaLocalizer().locate(clean_los_observations)
        soft = AoaLocalizer(mode="spectrum").locate(clean_los_observations)
        assert (soft.position - truth).norm() <= (
            tri.position - truth
        ).norm() + 0.3
