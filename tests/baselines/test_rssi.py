"""Tests for repro.baselines.rssi: trilateration and fingerprinting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.rssi import (
    RssiFingerprinting,
    RssiTrilateration,
    observation_rssi_dbm,
)
from repro.errors import ConfigurationError, LocalizationError
from repro.sim import ChannelMeasurementModel
from repro.sim.scenario import sample_tag_positions
from repro.sim.testbed import open_room_testbed
from repro.utils.geometry2d import Point


@pytest.fixture(scope="module")
def los_model():
    testbed = open_room_testbed()
    return ChannelMeasurementModel(
        testbed=testbed,
        seed=91,
        snr_db=35.0,
        calibration_error_m=0.0,
        element_phase_error_deg=0.0,
        element_gain_error_db=0.0,
    )


class TestRssiExtraction:
    def test_closer_anchor_stronger(self, los_model):
        obs = los_model.measure(Point(0.0, -1.2))  # near AP1 (south)
        rssi = observation_rssi_dbm(obs)
        assert rssi[0] > rssi[2]  # south anchor beats north anchor


class TestTrilateration:
    def test_path_loss_inversion(self):
        baseline = RssiTrilateration(
            rssi_at_1m_dbm=-40.0, path_loss_exponent=2.0
        )
        distances = baseline.distances_from_rssi(np.array([-40.0, -60.0]))
        assert distances[0] == pytest.approx(1.0)
        assert distances[1] == pytest.approx(10.0)

    def test_invalid_exponent(self):
        with pytest.raises(ConfigurationError):
            RssiTrilateration(path_loss_exponent=0)

    def test_calibration_recovers_free_space(self, los_model):
        testbed = los_model.testbed
        positions = sample_tag_positions(testbed, 25, seed=5)
        observations = [
            los_model.measure(p, round_index=k)
            for k, p in enumerate(positions)
        ]
        baseline = RssiTrilateration()
        baseline.calibrate(observations)
        # Our channel gain is A/d with A = 1: exponent 2 in power.
        assert baseline.path_loss_exponent == pytest.approx(2.0, abs=0.6)

    def test_locates_roughly_in_los(self, los_model):
        positions = sample_tag_positions(los_model.testbed, 25, seed=5)
        observations = [
            los_model.measure(p, round_index=k)
            for k, p in enumerate(positions)
        ]
        baseline = RssiTrilateration()
        baseline.calibrate(observations)
        errors = []
        for obs in observations[:10]:
            result = baseline.locate(obs)
            errors.append((result.position - obs.ground_truth).norm())
        # RSSI is coarse; LOS free-ish space should still bound it.
        assert np.median(errors) < 1.5

    def test_calibration_needs_ground_truth(self, los_model):
        obs = los_model.measure(Point(0, 0))
        obs.ground_truth = None
        with pytest.raises(ConfigurationError):
            RssiTrilateration().calibrate([obs])


class TestFingerprinting:
    def test_needs_training(self, los_model):
        obs = los_model.measure(Point(0, 0))
        with pytest.raises(LocalizationError):
            RssiFingerprinting().locate(obs)

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            RssiFingerprinting(k=0)

    def test_exact_match_recovers_position(self, los_model):
        positions = sample_tag_positions(los_model.testbed, 30, seed=6)
        observations = [
            los_model.measure(p, round_index=k)
            for k, p in enumerate(positions)
        ]
        fingerprinting = RssiFingerprinting(k=1)
        fingerprinting.train(observations)
        result = fingerprinting.locate(observations[7])
        assert (result.position - positions[7]).norm() < 1e-9

    def test_interpolates_between_neighbours(self, los_model):
        positions = sample_tag_positions(los_model.testbed, 40, seed=7)
        observations = [
            los_model.measure(p, round_index=k)
            for k, p in enumerate(positions)
        ]
        fingerprinting = RssiFingerprinting(k=3)
        fingerprinting.train(observations[:-5])
        errors = [
            (fingerprinting.locate(obs).position - obs.ground_truth).norm()
            for obs in observations[-5:]
        ]
        assert np.median(errors) < 2.0

    def test_num_fingerprints(self, los_model):
        fingerprinting = RssiFingerprinting()
        assert fingerprinting.num_fingerprints == 0
        fingerprinting.train([los_model.measure(Point(0, 0))])
        assert fingerprinting.num_fingerprints == 1
