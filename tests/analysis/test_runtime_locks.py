"""tsan-lite runtime checker: make_lock gating, CheckedLock semantics,
lock-order inversion detection, and guarded-field enforcement.

``tests/conftest.py`` enables ``REPRO_LOCK_CHECKS`` for the whole suite,
so these tests exercise the enabled paths directly; the gating tests
flip the environment variable around individual ``make_lock`` calls
(which read it per call).
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis.runtime_locks import (
    LOCK_CHECKS_ENV_VAR,
    CheckedLock,
    LockOrderRegistry,
    default_registry,
    guarded_by,
    holds_lock,
    lock_checks_enabled,
    make_lock,
)
from repro.errors import ConcurrencyViolation, ConfigurationError


@pytest.fixture
def registry() -> LockOrderRegistry:
    """A fresh, isolated registry (never the process-wide one)."""
    return LockOrderRegistry()


class TestMakeLockGating:
    def test_disabled_returns_plain_lock(self, monkeypatch):
        monkeypatch.delenv(LOCK_CHECKS_ENV_VAR, raising=False)
        assert not lock_checks_enabled()
        lock = make_lock("Gated._lock")
        assert not isinstance(lock, CheckedLock)
        with lock:
            pass

    @pytest.mark.parametrize("value", ["1", "true", "on", "yes", " TRUE "])
    def test_truthy_values_enable(self, monkeypatch, value):
        monkeypatch.setenv(LOCK_CHECKS_ENV_VAR, value)
        lock = make_lock("Gated._lock")
        assert isinstance(lock, CheckedLock)
        assert lock.name == "Gated._lock"

    @pytest.mark.parametrize("value", ["0", "off", "", "nope"])
    def test_falsy_values_disable(self, monkeypatch, value):
        monkeypatch.setenv(LOCK_CHECKS_ENV_VAR, value)
        assert not isinstance(make_lock("Gated._lock"), CheckedLock)

    def test_suite_runs_with_checks_enabled(self):
        # conftest.py sets this for the whole tier-1 run.
        assert lock_checks_enabled()

    def test_default_registry_is_shared(self):
        lock = make_lock("Shared._lock")
        assert isinstance(lock, CheckedLock)
        assert lock._registry is default_registry()


class TestCheckedLock:
    def test_requires_name(self, registry):
        with pytest.raises(ConfigurationError):
            CheckedLock("", registry)

    def test_context_manager_and_ownership(self, registry):
        lock = CheckedLock("T._lock", registry)
        assert not lock.locked()
        assert not lock.held_by_current_thread()
        with lock:
            assert lock.locked()
            assert lock.held_by_current_thread()
            assert registry.held_names() == ("T._lock",)
        assert not lock.locked()
        assert not lock.held_by_current_thread()
        assert registry.held_names() == ()

    def test_other_thread_does_not_own(self, registry):
        lock = CheckedLock("T._lock", registry)
        seen = {}

        def probe():
            seen["held"] = lock.held_by_current_thread()
            seen["locked"] = lock.locked()

        with lock:
            worker = threading.Thread(target=probe)
            worker.start()
            worker.join()
        assert seen == {"held": False, "locked": True}

    def test_repr_names_the_rank(self, registry):
        assert "T._lock" in repr(CheckedLock("T._lock", registry))


class TestLockOrderRegistry:
    def test_reacquire_raises_before_deadlock(self, registry):
        lock = CheckedLock("A._lock", registry)
        with lock:
            with pytest.raises(ConcurrencyViolation, match="re-acquired"):
                lock.acquire()

    def test_same_rank_nesting_raises(self, registry):
        first = CheckedLock("Instrument._lock", registry)
        second = CheckedLock("Instrument._lock", registry)
        with first:
            with pytest.raises(ConcurrencyViolation, match="same-rank"):
                second.acquire()

    def test_inversion_detected_single_threaded(self, registry):
        """The classic tsan-lite property: one run, no deadlock, the
        inversion still raises when the reverse edge is on record."""
        a = CheckedLock("A._lock", registry)
        b = CheckedLock("B._lock", registry)
        with a:
            with b:
                pass
        with b:
            with pytest.raises(
                ConcurrencyViolation, match="lock-order inversion"
            ):
                a.acquire()

    def test_consistent_order_is_silent(self, registry):
        a = CheckedLock("A._lock", registry)
        b = CheckedLock("B._lock", registry)
        for _ in range(3):
            with a:
                with b:
                    pass
        assert list(registry.observed_edges()) == [("A._lock", "B._lock")]

    def test_observed_edges_and_reset(self, registry):
        a = CheckedLock("A._lock", registry)
        b = CheckedLock("B._lock", registry)
        with a:
            with b:
                pass
        edges = registry.observed_edges()
        assert list(edges) == [("A._lock", "B._lock")]
        site = edges["A._lock", "B._lock"]
        # _call_site skips frames in *runtime_locks.py -- which matches
        # this test file's name too -- so just check the file:line shape.
        assert ":" in site and site.rsplit(":", 1)[1].isdigit()
        registry.reset()
        assert registry.observed_edges() == {}
        # After reset the reverse order establishes a fresh edge.
        with b:
            with a:
                pass
        assert list(registry.observed_edges()) == [("B._lock", "A._lock")]

    def test_transitive_chain_records_all_edges(self, registry):
        a = CheckedLock("A._lock", registry)
        b = CheckedLock("B._lock", registry)
        c = CheckedLock("C._lock", registry)
        with a:
            with b:
                with c:
                    pass
        assert set(registry.observed_edges()) == {
            ("A._lock", "B._lock"),
            ("A._lock", "C._lock"),
            ("B._lock", "C._lock"),
        }

    def test_suite_wide_dag_has_no_cycles(self):
        """Whatever the rest of the suite has exercised so far must form
        a DAG -- the acceptance criterion for the tsan-lite rollout."""
        edges = default_registry().observed_edges()
        graph: dict = {}
        for held, acquired in edges:
            graph.setdefault(held, set()).add(acquired)

        def reaches(start, goal, seen):
            for nxt in graph.get(start, ()):
                if nxt == goal:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    if reaches(nxt, goal, seen):
                        return True
            return False

        for held, acquired in edges:
            assert not reaches(acquired, held, {acquired}), (
                f"cycle through observed edge {held} -> {acquired}"
            )


class TestGuardedBy:
    def _tracker_cls(self, registry):
        @guarded_by("_lock", "_count")
        class Tracker:
            def __init__(self):
                self._lock = CheckedLock("TrackerFixture._lock", registry)
                self._count = 0

            def bump_unsafely(self):
                self._count += 1

            def bump(self):
                with self._lock:
                    self._count += 1

        return Tracker

    def test_requires_fields(self):
        with pytest.raises(ConfigurationError):
            guarded_by("_lock")

    def test_declaration_is_recorded(self, registry):
        cls = self._tracker_cls(registry)
        assert cls.__guarded_fields__ == {"_count": "_lock"}

    def test_stacked_decorators_merge(self):
        @guarded_by("_read_lock", "_pages")
        @guarded_by("_write_lock", "_dirty")
        class Cache:
            pass

        assert Cache.__guarded_fields__ == {
            "_pages": "_read_lock",
            "_dirty": "_write_lock",
        }

    def test_init_writes_are_exempt(self, registry):
        tracker = self._tracker_cls(registry)()
        assert tracker._count == 0

    def test_unguarded_rebind_raises(self, registry):
        tracker = self._tracker_cls(registry)()
        with pytest.raises(ConcurrencyViolation, match="_count"):
            tracker.bump_unsafely()

    def test_locked_rebind_is_fine(self, registry):
        tracker = self._tracker_cls(registry)()
        tracker.bump()
        tracker.bump()
        assert tracker._count == 2

    def test_unguarded_fields_unaffected(self, registry):
        tracker = self._tracker_cls(registry)()
        tracker.note = "free-form"
        assert tracker.note == "free-form"


class TestHoldsLock:
    def _holder_cls(self, registry):
        class Holder:
            def __init__(self):
                self._lock = CheckedLock("HolderFixture._lock", registry)
                self.items = []

            @holds_lock("_lock")
            def _drain_locked(self):
                drained = list(self.items)
                self.items.clear()
                return drained

            def drain(self):
                with self._lock:
                    return self._drain_locked()

        return Holder

    def test_tag_is_recorded(self, registry):
        cls = self._holder_cls(registry)
        assert cls._drain_locked.__repro_holds_lock__ == "_lock"

    def test_entered_with_lock_held(self, registry):
        holder = self._holder_cls(registry)()
        holder.items.append(1)
        assert holder.drain() == [1]
        assert holder.items == []

    def test_entered_without_lock_raises(self, registry):
        holder = self._holder_cls(registry)()
        with pytest.raises(ConcurrencyViolation, match="_drain_locked"):
            holder._drain_locked()
