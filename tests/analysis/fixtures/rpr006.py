"""RPR006 fixture: float-literal equality."""


def compare(x):
    if x == 0.1:
        return 1
    if 2.5 != x:
        return 2
    if x == 1:
        return 3  # integer equality is fine
    return x == 0.3  # repro: noqa[RPR006] -- fixture
