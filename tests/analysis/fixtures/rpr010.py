"""RPR010 fixture: thread-safety docstring tags on worker-reachable code."""


class Cache:
    def entry_for(self, key):
        """No tag here."""
        return key

    def tagged(self, key):
        """Thread-safe: guarded by the cache lock."""
        return key

    def waived(self, key):  # repro: noqa[RPR010] -- fixture
        """No tag either."""
        return key
