"""RPR015 clean fixture: every acquisition is released or handed off."""

from multiprocessing import shared_memory


def with_statement(path):
    with open(path) as fh:
        return fh.read()


def try_finally(path):
    fh = open(path)
    try:
        return fh.read()
    finally:
        fh.close()


def ownership_returned(path):
    return open(path)


def ownership_stored(obj, path):
    obj.fh = open(path)


def ownership_passed(path, sink):
    fh = open(path)
    sink(fh)


class Holder:
    def __init__(self, size):
        self._shm = shared_memory.SharedMemory(create=True, size=size)

    def close(self):
        self._shm.close()


def segment_released(size):
    shm = shared_memory.SharedMemory(create=True, size=size)
    try:
        return bytes(shm.buf[:1])
    finally:
        shm.close()
        shm.unlink()
