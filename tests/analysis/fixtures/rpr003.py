"""RPR003 fixture: unlocked module-level mutation (linted as core/)."""

import threading

_CACHE = {}
_EVENTS = []
_LOCK = threading.Lock()

_CACHE["init"] = 0  # module-level init writes are fine


def unsafe_item(key, value):
    _CACHE[key] = value


def unsafe_method(event):
    _EVENTS.append(event)


def safe(key, value):
    with _LOCK:
        _CACHE[key] = value


def waived(key, value):
    _CACHE[key] = value  # repro: noqa[RPR003] -- fixture
