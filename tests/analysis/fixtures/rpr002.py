"""RPR002 fixture: nondeterminism in physics code (linted as core/)."""

import random
import time

import numpy as np


def noisy():
    a = np.random.normal(0.0, 1.0)
    b = random.random()
    c = time.time()
    rng = np.random.default_rng(7)  # allowed: Generator construction
    ok = time.time()  # repro: noqa[RPR002] -- fixture
    return a, b, c, rng, ok
