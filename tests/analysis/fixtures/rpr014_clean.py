"""RPR014 clean fixture: consistent order, sequential acquisitions."""

import threading


class Ordered:
    def __init__(self):
        self._a_lock = threading.Lock()
        self._b_lock = threading.Lock()

    def a_then_b(self):
        with self._a_lock:
            with self._b_lock:
                pass

    def also_a_then_b(self):
        with self._a_lock:
            self._take_b()

    def _take_b(self):
        with self._b_lock:
            pass

    def sequential_is_fine(self):
        with self._b_lock:
            pass
        with self._a_lock:
            pass


class SnapshotMerge:
    def __init__(self):
        self._lock = threading.Lock()
        self._data = {}

    def merge(self, other):
        with other._lock:  # sequential same-rank: snapshot first...
            data = dict(other._data)
        with self._lock:  # ...then fold in; never nested
            self._data.update(data)
