"""RPR005 fixture: metric-name convention."""


def record(metrics, index):
    metrics.counter("bogus.total").inc()
    metrics.gauge("engine.CamelCase").set(1.0)
    metrics.histogram("engine").observe(1.0)
    metrics.counter(f"Bogus.{index}").inc()
    metrics.counter("engine.build_seconds").inc()
    metrics.gauge(f"anchor.{index}.coverage").set(1.0)
    metrics.counter("bogus.x")  # repro: noqa[RPR005] -- fixture
