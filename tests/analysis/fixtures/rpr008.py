"""RPR008 fixture: bare / overbroad except clauses."""


def swallow_all():
    try:
        return 1
    except:
        return None


def swallow_exception():
    try:
        return 1
    except Exception:
        return None


def swallow_tuple():
    try:
        return 1
    except (ValueError, BaseException):
        return None


def fine():
    try:
        return 1
    except ValueError:
        return None


def waived():
    try:
        return 1
    except Exception:  # repro: noqa[RPR008] -- fixture
        return None
