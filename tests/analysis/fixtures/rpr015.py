"""RPR015 fixture: resources not released on all paths."""

from multiprocessing import shared_memory


def never_closed(path):
    fh = open(path)
    return fh.read()


def success_path_only(path):
    fh = open(path)
    data = fh.read()
    fh.close()
    return data


def segment_never_released(size):
    shm = shared_memory.SharedMemory(create=True, size=size)
    return shm.buf[0]


def discarded_handle(path):
    open(path, "a")


def waived(path):
    fh = open(path)  # repro: noqa[RPR015] -- fixture
    return fh.read()
