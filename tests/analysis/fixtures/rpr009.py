"""RPR009 fixture: hard-coded BLE constants."""


def band_plan():
    c = 299792458.0
    start = 2.402e9
    unrelated = 2.5e9  # not a catalogued constant
    waived = 2.426e9  # repro: noqa[RPR009] -- fixture
    return c, start, unrelated, waived
