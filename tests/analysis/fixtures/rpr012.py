"""RPR012 fixture: service handlers must open a trace-carrying span."""


def handle_untraced(raw_body):
    return 200, {"ok": True}, {}


def handle_span_without_trace(raw_body, observer):
    with observer.span("service.locate"):
        return 200, {"ok": True}, {}


def handle_waived(raw_body):  # repro: noqa[RPR012] -- fixture
    return 200, {"ok": True}, {}


def handle_traced(raw_body, observer, trace_id):
    with observer.span("service.locate", trace_id=trace_id):
        return 200, {"ok": True}, {}


def handle_chained(raw_body, get_observer, trace_id):
    with get_observer().span("service.stats", trace_id=trace_id):
        return 200, {"ok": True}, {}


def not_a_handler(raw_body):
    return 200, {"ok": True}, {}
