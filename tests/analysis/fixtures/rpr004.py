"""RPR004 fixture: unbalanced Span usage."""


def bad(observer):
    observer.span("correct")
    parked = observer.span("map_likelihood")
    return parked


def good(observer):
    with observer.span("correct"):
        pass
    return observer.span("delegated")


def waived(observer):
    observer.span("legacy")  # repro: noqa[RPR004] -- fixture
