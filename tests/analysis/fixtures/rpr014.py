"""RPR014 fixture: lock-order inversion cycles (lexical and via calls)."""

import threading


class Inverted:
    def __init__(self):
        self._a_lock = threading.Lock()
        self._b_lock = threading.Lock()

    def a_then_b(self):
        with self._a_lock:
            with self._b_lock:
                pass

    def b_then_a(self):
        with self._b_lock:
            with self._a_lock:
                pass


class ThroughCalls:
    def __init__(self):
        self._outer_lock = threading.Lock()
        self._inner_lock = threading.Lock()

    def forward(self):
        with self._outer_lock:
            self._take_inner()

    def _take_inner(self):
        with self._inner_lock:
            pass

    def backward(self):
        with self._inner_lock:
            with self._outer_lock:
                pass


class SameRank:
    def __init__(self):
        self._lock = threading.Lock()

    def merge(self, other):
        with other._lock:
            with self._lock:  # nested same-rank: deadlocks cross-instance
                pass
