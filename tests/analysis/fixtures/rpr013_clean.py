"""RPR013 clean fixture: every guarded access holds the lock."""

import threading

from repro.analysis.runtime_locks import guarded_by, holds_lock

_LOCK = threading.Lock()
_TABLE = {}  # guarded-by: _LOCK


@guarded_by("_lock", "_count", "_items")
class CleanTracker:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0
        self._items = []
        self.unguarded = "free"  # not declared: never checked

    def add(self, item):
        with self._lock:
            self._items.append(item)
            self._count += 1
            return self._flush_locked()

    @holds_lock("_lock")
    def _flush_locked(self):
        drained = list(self._items)
        self._items.clear()
        return drained

    def count(self):
        with self._lock:
            return self._count

    def free(self):
        return self.unguarded


def read_global():
    with _LOCK:
        return dict(_TABLE)
