"""RPR013 fixture: guarded fields accessed without their lock."""

import threading

from repro.analysis.runtime_locks import guarded_by, holds_lock

_LOCK = threading.Lock()
_TABLE = {}  # guarded-by: _LOCK

_TABLE["init"] = 0  # module-level init is exempt


@guarded_by("_lock", "_count", "_items")
class Tracker:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0  # __init__ is exempt
        self._items = []
        self._stats = {}  # guarded-by: _lock

    def safe_add(self, item):
        with self._lock:
            self._items.append(item)
            self._count += 1

    @holds_lock("_lock")
    def _drain_locked(self):
        drained = list(self._items)
        self._items.clear()
        return drained

    def unsafe_read(self):
        return self._count

    def unsafe_write(self, item):
        self._items.append(item)

    def unsafe_comment_guard(self):
        return dict(self._stats)

    def waived(self):
        return self._count  # repro: noqa[RPR013] -- fixture


def unsafe_global():
    return dict(_TABLE)


def safe_global(key, value):
    with _LOCK:
        _TABLE[key] = value
