"""RPR007 fixture: mutable default arguments."""


def bad_list(values=[]):
    return values


def bad_factory(items=dict()):
    return items


def good(values=None):
    return values or []


def waived(values=[]):  # repro: noqa[RPR007] -- fixture
    return values
