"""RPR001 fixture: complex-dtype loss on CSI arrays (linted as core/)."""

import numpy as np


def narrow(csi, alpha):
    bad_cast = np.float32(1.0)
    bad_abs = np.abs(csi)
    bad_astype = alpha.astype("float64")
    bad_dtype = np.zeros(4, dtype=np.complex64)
    ok = np.abs(csi)  # repro: noqa[RPR001] -- fixture: amplitude sink
    return bad_cast, bad_abs, bad_astype, bad_dtype, ok
