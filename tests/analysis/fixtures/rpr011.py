"""RPR011 fixture: SharedMemory constructed outside the shm engine."""

from multiprocessing import shared_memory


def leaky_publish():
    return shared_memory.SharedMemory(create=True, size=16)


def bare_attach(name):
    return SharedMemory(name=name)  # noqa: F821 -- fixture


def waived(name):
    return shared_memory.SharedMemory(name=name)  # repro: noqa[RPR011] -- fixture


def fine(name):
    return {"shared_memory": name}  # dict access, not a constructor
