"""Engine mechanics: noqa parsing, suppression, reports, path walking."""

from __future__ import annotations

import ast
import json

import pytest

from repro.analysis.linting import (
    BLANKET,
    PARSE_ERROR_RULE,
    FileContext,
    Finding,
    LintEngine,
    Rule,
    parse_noqa,
)


class TestParseNoqa:
    def test_blanket(self):
        table = parse_noqa("x = 1  # repro: noqa\n")
        assert table == {1: {BLANKET}}

    def test_single_rule(self):
        table = parse_noqa("x = 1\ny = 2  # repro: noqa[RPR006]\n")
        assert table == {2: {"RPR006"}}

    def test_rule_list_and_case(self):
        table = parse_noqa("z = 3  # repro: noqa[rpr001, RPR009]\n")
        assert table == {1: {"RPR001", "RPR009"}}

    def test_unrelated_comments_ignored(self):
        assert parse_noqa("x = 1  # noqa\n# repro: metrics\n") == {}


class _AlwaysFire(Rule):
    id = "TEST001"
    title = "fires on every module"
    scopes = None

    def check(self, ctx):
        yield ctx.finding(self.id, ctx.tree.body[0], "boom")


class TestEngine:
    def test_parse_error_reported_not_raised(self):
        findings = LintEngine(rules=[]).lint_source("def broken(:\n")
        assert [f.rule for f in findings] == [PARSE_ERROR_RULE]
        assert "cannot parse" in findings[0].message

    def test_suppression_marks_but_keeps_finding(self):
        engine = LintEngine(rules=[_AlwaysFire()])
        active = engine.lint_source("x = 1\n")
        waived = engine.lint_source("x = 1  # repro: noqa[TEST001]\n")
        assert [f.suppressed for f in active] == [False]
        assert [f.suppressed for f in waived] == [True]

    def test_blanket_noqa_suppresses_any_rule(self):
        engine = LintEngine(rules=[_AlwaysFire()])
        findings = engine.lint_source("x = 1  # repro: noqa\n")
        assert [f.suppressed for f in findings] == [True]

    def test_noqa_for_other_rule_does_not_suppress(self):
        engine = LintEngine(rules=[_AlwaysFire()])
        findings = engine.lint_source("x = 1  # repro: noqa[RPR999]\n")
        assert [f.suppressed for f in findings] == [False]

    def test_duplicate_rule_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            LintEngine(rules=[_AlwaysFire(), _AlwaysFire()])

    def test_rule_without_id_rejected(self):
        class Nameless(Rule):
            pass

        with pytest.raises(ValueError, match="no id"):
            LintEngine(rules=[Nameless()])

    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "b.py").write_text("y = 2\n")
        report = LintEngine(rules=[_AlwaysFire()]).lint_paths([tmp_path])
        assert report.files_checked == 2
        assert len(report.active) == 2

    def test_report_json_contract(self, tmp_path):
        (tmp_path / "a.py").write_text(
            "x = 1\ny = 2  # repro: noqa[TEST001]\n"
        )
        report = LintEngine(rules=[_AlwaysFire()]).lint_paths([tmp_path])
        data = json.loads(report.to_json())
        assert data["format"] == "repro-lint"
        assert data["version"] == 2
        assert data["files_checked"] == 1
        assert data["num_findings"] == 1
        assert data["counts_by_rule"] == {"TEST001": 1}
        assert data["findings"][0]["rule"] == "TEST001"


class TestFileContext:
    def test_parent_links_and_ancestors(self):
        source = "def f():\n    return 1\n"
        tree = ast.parse(source)
        ctx = FileContext(source, tree, path="x.py")
        ret = tree.body[0].body[0]
        assert ctx.parent(ret) is tree.body[0]
        assert list(ctx.ancestors(ret)) == [tree.body[0], tree]

    def test_in_dirs_matches_segments(self):
        tree = ast.parse("x = 1\n")
        ctx = FileContext("x = 1\n", tree, path="p", rel="src/repro/core/a.py")
        assert ctx.in_dirs("core")
        assert ctx.in_dirs("rf", "core")
        assert not ctx.in_dirs("obs")


class TestFinding:
    def test_render_and_suppressed_marker(self):
        f = Finding("RPR001", "a.py", 3, 7, "msg")
        assert f.render() == "a.py:3:7: RPR001 msg"
        s = Finding("RPR001", "a.py", 3, 7, "msg", suppressed=True)
        assert s.render().endswith("[suppressed]")
