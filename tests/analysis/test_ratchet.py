"""Typing ratchet: gap counting, baseline comparison, CLI exit codes."""

from __future__ import annotations

import ast
import json
from pathlib import Path

import pytest

from repro.analysis.ratchet import (
    BASELINE_FORMAT,
    annotation_gap_count,
    collect_annotation_counts,
    compare,
    load_baseline,
    main,
    resolve_checker,
    write_baseline,
)

ANNOTATED = "def f(x: int) -> int:\n    return x\n"
ONE_GAP = "def f(x: int):\n    return x\n"
TWO_GAPS = "def f(x, y: int) -> int:\n    return x + y\n"


def gaps(source: str) -> int:
    return annotation_gap_count(ast.parse(source))


class TestAnnotationGapCount:
    def test_fully_annotated_is_zero(self):
        assert gaps(ANNOTATED) == 0

    def test_missing_return_counts(self):
        assert gaps(ONE_GAP) == 1

    def test_missing_params_count(self):
        assert gaps(TWO_GAPS) == 1

    def test_self_and_cls_exempt(self):
        source = (
            "class C:\n"
            "    def m(self, x: int) -> int:\n"
            "        return x\n"
            "    @classmethod\n"
            "    def k(cls) -> None:\n"
            "        return None\n"
        )
        assert gaps(source) == 0

    def test_init_return_exempt(self):
        source = "class C:\n    def __init__(self, x: int):\n        pass\n"
        assert gaps(source) == 0

    def test_varargs_and_kwonly_count(self):
        source = "def f(*args, key, **kwargs) -> None:\n    pass\n"
        assert gaps(source) == 3

    def test_module_without_functions_is_zero(self):
        assert gaps("X = 1\n") == 0


class TestCollectCounts:
    def test_keys_are_relative_to_root_parent(self, tmp_path):
        pkg = tmp_path / "repro"
        (pkg / "core").mkdir(parents=True)
        (pkg / "a.py").write_text(ANNOTATED)
        (pkg / "core" / "b.py").write_text(ONE_GAP)
        counts = collect_annotation_counts(pkg)
        assert counts == {"repro/a.py": 0, "repro/core/b.py": 1}


class TestCompare:
    def test_equal_counts_ok(self):
        out = compare({"a.py": 2}, {"a.py": 2})
        assert out["regressions"] == []
        assert out["improvements"] == []

    def test_growth_is_regression(self):
        out = compare({"a.py": 3}, {"a.py": 2})
        assert len(out["regressions"]) == 1
        assert "a.py" in out["regressions"][0]

    def test_shrink_is_improvement(self):
        out = compare({"a.py": 1}, {"a.py": 2})
        assert len(out["improvements"]) == 1

    def test_new_module_budget_is_zero(self):
        out = compare({"new.py": 1}, {})
        assert len(out["regressions"]) == 1

    def test_new_clean_module_ok(self):
        out = compare({"new.py": 0}, {})
        assert out["regressions"] == []

    def test_deleted_module_reported(self):
        out = compare({}, {"gone.py": 4})
        assert out["removed"] == ["gone.py"]


class TestBaselineIo:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(
            path, "annotations", Path("src/repro"), {"repro/a.py": 2}
        )
        payload = load_baseline(path)
        assert payload["format"] == BASELINE_FORMAT
        assert payload["checker"] == "annotations"
        assert payload["total"] == 2
        assert payload["modules"] == {"repro/a.py": 2}

    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError, match="not a"):
            load_baseline(path)

    def test_rejects_unknown_checker(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps(
                {"format": BASELINE_FORMAT, "checker": "psychic", "modules": {}}
            )
        )
        with pytest.raises(ValueError, match="unknown checker"):
            load_baseline(path)

    def test_resolve_checker_follows_baseline(self):
        assert (
            resolve_checker("auto", {"checker": "annotations"})
            == "annotations"
        )
        assert resolve_checker("mypy", None) == "mypy"


class TestCli:
    def _tree(self, tmp_path, source=ONE_GAP):
        root = tmp_path / "repro"
        root.mkdir()
        (root / "mod.py").write_text(source)
        return root

    def test_update_then_check_ok(self, tmp_path):
        root = self._tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        argv_tail = [
            "--baseline", str(baseline),
            "--root", str(root),
            "--checker", "annotations",
        ]
        assert main(["update", *argv_tail]) == 0
        assert main(["check", *argv_tail]) == 0

    def test_check_fails_on_regression(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        argv_tail = [
            "--baseline", str(baseline),
            "--root", str(root),
            "--checker", "annotations",
        ]
        assert main(["update", *argv_tail]) == 0
        (root / "mod.py").write_text(TWO_GAPS + ONE_GAP.replace("f(", "g("))
        assert main(["check", *argv_tail]) == 1
        assert "REGRESSED" in capsys.readouterr().err

    def test_check_passes_on_improvement(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        argv_tail = [
            "--baseline", str(baseline),
            "--root", str(root),
            "--checker", "annotations",
        ]
        assert main(["update", *argv_tail]) == 0
        (root / "mod.py").write_text(ANNOTATED)
        assert main(["check", *argv_tail]) == 0
        assert "improved" in capsys.readouterr().out

    def test_new_unannotated_module_regresses(self, tmp_path):
        root = self._tree(tmp_path, source=ANNOTATED)
        baseline = tmp_path / "baseline.json"
        argv_tail = [
            "--baseline", str(baseline),
            "--root", str(root),
            "--checker", "annotations",
        ]
        assert main(["update", *argv_tail]) == 0
        (root / "fresh.py").write_text(ONE_GAP)
        assert main(["check", *argv_tail]) == 1

    def test_missing_baseline_is_usage_error(self, tmp_path):
        root = self._tree(tmp_path)
        assert (
            main(
                [
                    "check",
                    "--baseline", str(tmp_path / "absent.json"),
                    "--root", str(root),
                    "--checker", "annotations",
                ]
            )
            == 2
        )

    def test_cross_checker_comparison_refused(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, "mypy", root, {"repro/mod.py": 0})
        code = main(
            [
                "check",
                "--baseline", str(baseline),
                "--root", str(root),
                "--checker", "annotations",
            ]
        )
        assert code == 2
        assert "not comparable" in capsys.readouterr().err

    def test_bad_root_is_usage_error(self, tmp_path):
        assert (
            main(
                [
                    "check",
                    "--baseline", str(tmp_path / "b.json"),
                    "--root", str(tmp_path / "nowhere"),
                ]
            )
            == 2
        )

    def test_committed_repo_baseline_is_green(self):
        repo = Path(__file__).resolve().parents[2]
        baseline = repo / "typing_baseline.json"
        assert baseline.is_file(), "typing_baseline.json must be committed"
        code = main(
            [
                "check",
                "--baseline", str(baseline),
                "--root", str(repo / "src" / "repro"),
                "--checker", "annotations",
            ]
        )
        assert code == 0
