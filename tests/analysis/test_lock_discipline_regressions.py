"""Regression tests for the races the concurrency audit fixed.

Rolling out RPR013-015 over the tree surfaced a handful of real
violations -- unlocked snapshot reads and an exception-path shared
memory leak.  Each fix gets a behavioural test here so the bug cannot
quietly return, plus a declaration-integrity sweep over every
``@guarded_by`` class in the package.
"""

from __future__ import annotations

import inspect
import threading

import pytest

from repro.core import (
    EngineConfig,
    SteeringCache,
    build_steering_entry,
    correct_phase_offsets,
)
from repro.core.parallel import active_segments, publish_steering_entry
from repro.obs.metrics import MetricsRegistry
from repro.service.telemetry import AccuracyTelemetry
from repro.sim import ChannelMeasurementModel
from repro.sim.runner import DiagnosticsCapture
from repro.sim.testbed import open_room_testbed
from repro.utils.geometry2d import Point
from repro.utils.gridmap import Grid2D


@pytest.fixture(scope="module")
def observations():
    model = ChannelMeasurementModel(testbed=open_room_testbed(), seed=7)
    return model.measure(Point(0.4, -0.3))


@pytest.fixture(scope="module")
def corrected(observations):
    return correct_phase_offsets(observations)


@pytest.fixture(scope="module")
def entry(corrected):
    grid = Grid2D(-2.0, 2.0, -1.5, 1.5, 0.25)
    return build_steering_entry(
        grid,
        corrected.anchors,
        corrected.master_index,
        corrected.anchor_baselines_m,
        corrected.frequencies_hz,
    )


class TestSteeringCacheInfoSnapshot:
    def test_info_is_internally_consistent_under_churn(self, entry):
        """`info()` takes entries and counters in one locked snapshot.

        Before the fix the counters were read lock-free, so a reader
        racing an eviction could pair a post-eviction entry count with a
        pre-eviction byte total.  With every seeded entry the same size,
        a consistent snapshot always satisfies bytes == entries * size.
        """
        cache = SteeringCache(EngineConfig(max_entries=4))
        stop = threading.Event()

        def churn():
            key = 0
            while not stop.is_set():
                cache.seed(("k", key % 8), entry)
                key += 1
                if key % 16 == 0:
                    cache.clear()

        workers = [threading.Thread(target=churn) for _ in range(3)]
        for worker in workers:
            worker.start()
        try:
            for _ in range(300):
                info = cache.info()
                assert info["bytes"] == info["entries"] * entry.nbytes, info
        finally:
            stop.set()
            for worker in workers:
                worker.join()


class TestPublishFailurePathCleanup:
    def test_failed_publish_does_not_leak_the_segment(
        self, entry, monkeypatch
    ):
        """A failure between segment creation and handle construction
        unlinks the segment (the RPR015 exception-path case)."""
        import repro.core.parallel as parallel

        def explode(*args, **kwargs):
            raise RuntimeError("planted handle failure")

        monkeypatch.setattr(parallel, "SharedSteeringHandle", explode)
        before = active_segments()
        with pytest.raises(RuntimeError, match="planted handle failure"):
            publish_steering_entry(entry, ("key",))
        assert active_segments() == before

    def test_successful_publish_still_works(self, entry):
        segment = publish_steering_entry(entry, ("key",))
        try:
            assert segment.handle.name in active_segments()
        finally:
            segment.close()
        assert segment.handle.name not in active_segments()


class TestLockedCounterReads:
    def test_concurrent_increments_and_reads_stay_exact(self):
        """Counter/Gauge/Histogram snapshot reads go through the lock;
        hammering them from readers must not perturb the totals."""
        registry = MetricsRegistry()
        counter = registry.counter("reg.hits")
        histogram = registry.histogram("reg.latency", (0.1, 1.0))
        stop = threading.Event()

        def read_constantly():
            while not stop.is_set():
                counter.value
                histogram.mean() if histogram.count else None
                registry.snapshot()

        reader = threading.Thread(target=read_constantly)
        reader.start()

        def bump():
            for _ in range(1000):
                counter.inc()
                histogram.observe(0.5)

        try:
            workers = [threading.Thread(target=bump) for _ in range(4)]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
        finally:
            stop.set()
            reader.join()
        assert counter.value == 4000
        assert histogram.count == 4000
        assert histogram.mean() == pytest.approx(0.5)

    def test_histogram_extrema_read_under_lock(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("reg.latency", (0.1, 1.0))
        histogram.observe(0.2)
        histogram.observe(0.8)
        assert histogram.min == pytest.approx(0.2)
        assert histogram.max == pytest.approx(0.8)
        assert histogram.sum == pytest.approx(1.0)


class TestTelemetryFixCounter:
    def test_fixes_recorded_is_exact_across_threads(self, observations):
        telemetry = AccuracyTelemetry(MetricsRegistry())

        def record(count):
            for _ in range(count):
                telemetry.record_fix(observations, Point(0.4, -0.3))

        workers = [
            threading.Thread(target=record, args=(5,)) for _ in range(4)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert telemetry.fixes_recorded == 20


class TestDiagnosticsCaptureReads:
    def test_diagnostics_for_while_collectors_run(self, observations):
        capture = DiagnosticsCapture()
        stop = threading.Event()

        def collect():
            index = 0
            while not stop.is_set():
                capture.collect(index % 50, observations, None)
                index += 1

        worker = threading.Thread(target=collect)
        worker.start()
        try:
            for index in range(500):
                assert capture.diagnostics_for(index % 50) is None
        finally:
            stop.set()
            worker.join()


class TestGuardDeclarations:
    def test_every_guarded_class_names_a_real_lock_attribute(self):
        """``__guarded_fields__`` must point at lock attributes that the
        class actually creates -- a typo'd lock name would silently
        disable both the static and the runtime checks."""
        import repro.core.engine
        import repro.core.parallel
        import repro.obs.metrics
        import repro.obs.trace
        import repro.service.app
        import repro.service.pool
        import repro.service.ratelimit
        import repro.service.telemetry
        import repro.sim.runner

        classes = [
            repro.core.engine.SteeringCache,
            repro.core.parallel.SharedSteeringSegment,
            repro.obs.metrics.Counter,
            repro.obs.metrics.Gauge,
            repro.obs.metrics.Histogram,
            repro.obs.metrics.MetricsRegistry,
            repro.obs.trace.Tracer,
            repro.service.app.RotatingNdjsonLog,
            repro.service.app.LocalizationService,
            repro.service.pool.LocalizerPool,
            repro.service.ratelimit.RateLimiter,
            repro.service.telemetry.AccuracyTelemetry,
            repro.sim.runner.DiagnosticsCapture,
        ]
        for cls in classes:
            declared = getattr(cls, "__guarded_fields__", {})
            assert declared, f"{cls.__name__} lost its @guarded_by"
            source = inspect.getsource(cls)
            for field_name, lock_attr in declared.items():
                assert lock_attr in source, (
                    f"{cls.__name__}.{field_name} guarded by missing "
                    f"lock {lock_attr!r}"
                )
