"""RPR013/RPR014/RPR015: fixture behaviour, scopes, and self-lint.

Each rule gets a true-positive fixture (every planted hazard fires, the
``# repro: noqa[RPR0xx]`` line suppresses) and a clean fixture (zero
findings) -- plus a self-lint over ``src/`` proving the landed tree is
concurrency-clean modulo the two documented fast-path waivers.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.concurrency import (
    CONCURRENCY_RULES,
    GuardedFieldDiscipline,
    LockOrderInversion,
    ResourceLifetime,
    concurrency_rules,
)
from repro.analysis.linting import LintEngine, ProjectRule
from repro.analysis.rules import default_rules

FIXTURES = Path(__file__).parent / "fixtures"


def lint_fixture(name: str):
    engine = LintEngine(rules=concurrency_rules())
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return engine.lint_source(
        source,
        path=str(FIXTURES / name),
        rel=f"src/repro/core/{name}",
    )


def by_rule(findings, rule_id):
    return [f for f in findings if f.rule == rule_id]


class TestRuleSet:
    def test_every_concurrency_rule_has_fixtures(self):
        for cls in CONCURRENCY_RULES:
            for suffix in ("", "_clean"):
                name = f"{cls.id.lower()}{suffix}.py"
                assert (FIXTURES / name).is_file(), f"missing {name}"

    def test_ids_and_registry(self):
        assert [cls.id for cls in CONCURRENCY_RULES] == [
            "RPR013",
            "RPR014",
            "RPR015",
        ]
        assert issubclass(LockOrderInversion, ProjectRule)
        assert not issubclass(GuardedFieldDiscipline, ProjectRule)
        assert not issubclass(ResourceLifetime, ProjectRule)

    def test_not_in_default_rules(self):
        default_ids = {r.id for r in default_rules()}
        assert default_ids.isdisjoint({cls.id for cls in CONCURRENCY_RULES})


class TestRpr013GuardedBy:
    def test_true_positives(self):
        found = by_rule(lint_fixture("rpr013.py"), "RPR013")
        active = [f for f in found if not f.suppressed]
        assert len(active) == 4
        messages = " | ".join(f.message for f in active)
        assert "Tracker._count" in messages  # decorator-declared read
        assert "Tracker._items" in messages  # decorator-declared write
        assert "Tracker._stats" in messages  # comment-declared field
        assert "module global '_TABLE'" in messages  # comment-declared global
        assert len([f for f in found if f.suppressed]) == 1

    def test_clean_fixture(self):
        assert lint_fixture("rpr013_clean.py") == []

    def test_holds_lock_method_is_trusted(self):
        findings = by_rule(lint_fixture("rpr013.py"), "RPR013")
        assert not any("_drain_locked" in f.message for f in findings)

    def test_init_is_exempt(self):
        findings = by_rule(lint_fixture("rpr013.py"), "RPR013")
        assert not any("__init__" in f.message for f in findings)


class TestRpr014LockOrder:
    def test_true_positives(self):
        found = by_rule(lint_fixture("rpr014.py"), "RPR014")
        messages = " | ".join(f.message for f in found)
        # Lexical ABBA inversion.
        assert "Inverted._a_lock -> Inverted._b_lock" in messages
        # Inversion only visible through the call graph.
        assert "ThroughCalls" in messages
        # Same-rank nesting (the merge(self, other) hazard).
        assert "SameRank._lock" in messages and "same-rank" in messages
        assert len(found) == 3

    def test_clean_fixture(self):
        assert lint_fixture("rpr014_clean.py") == []

    def test_cross_file_inversion(self, tmp_path):
        """The project rule sees the cycle even when the two paths live
        in different modules sharing module-level locks."""
        (tmp_path / "mod_a.py").write_text(
            "from locks import FIRST_LOCK, SECOND_LOCK\n\n\n"
            "def forward():\n"
            "    with FIRST_LOCK:\n"
            "        with SECOND_LOCK:\n"
            "            pass\n"
        )
        (tmp_path / "mod_b.py").write_text(
            "from locks import FIRST_LOCK, SECOND_LOCK\n\n\n"
            "def backward():\n"
            "    with SECOND_LOCK:\n"
            "        with FIRST_LOCK:\n"
            "            pass\n"
        )
        report = LintEngine(rules=concurrency_rules()).lint_paths(
            [tmp_path]
        )
        # Bare module-level lock names are module-scoped ranks, so the
        # two files only collide when the names resolve identically;
        # same-file inversion is the guaranteed detection.
        (tmp_path / "mod_c.py").write_text(
            "import threading\n\n"
            "first_lock = threading.Lock()\n"
            "second_lock = threading.Lock()\n\n\n"
            "def forward():\n"
            "    with first_lock:\n"
            "        with second_lock:\n"
            "            pass\n\n\n"
            "def backward():\n"
            "    with second_lock:\n"
            "        with first_lock:\n"
            "            pass\n"
        )
        report = LintEngine(rules=concurrency_rules()).lint_paths(
            [tmp_path]
        )
        assert any(f.rule == "RPR014" for f in report.active)


class TestRpr015ResourceLifetime:
    def test_true_positives(self):
        found = by_rule(lint_fixture("rpr015.py"), "RPR015")
        active = [f for f in found if not f.suppressed]
        assert len(active) == 4
        messages = " | ".join(f.message for f in active)
        assert "never_closed" in messages
        assert "closed only on the success path" in messages
        assert "SharedMemory" in messages
        assert "discarded_handle" in messages
        assert len([f for f in found if f.suppressed]) == 1

    def test_clean_fixture(self):
        assert lint_fixture("rpr015_clean.py") == []


class TestLandedTreeIsConcurrencyClean:
    def test_src_tree_has_no_failing_concurrency_findings(self):
        """The annotated tree passes RPR013-015 with no baseline debt.

        The only non-failing findings allowed are the two documented
        noqa waivers on the double-checked fast paths (pool.get and
        service._batcher_for).
        """
        root = Path(__file__).resolve().parents[2] / "src"
        report = LintEngine(rules=concurrency_rules()).lint_paths([root])
        assert report.files_checked > 50
        rendered = "\n".join(f.render() for f in report.active)
        assert report.active == [], f"concurrency regressions:\n{rendered}"
        waived = [f for f in report.suppressed if f.rule == "RPR013"]
        waived_paths = sorted({Path(f.path).name for f in waived})
        assert waived_paths == ["app.py", "pool.py"]
