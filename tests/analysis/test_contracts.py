"""Runtime shape/dtype contracts: gating, binding, violations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.contracts import (
    CONTRACTS_ENV_VAR,
    arr,
    contracts_enabled,
    shaped,
)
from repro.errors import ConfigurationError, ContractViolation


class TestGating:
    def test_suite_runs_with_contracts_enabled(self):
        # conftest.py sets REPRO_CONTRACTS=1 before any repro import.
        assert contracts_enabled()

    def test_disabled_returns_function_unchanged(self, monkeypatch):
        monkeypatch.delenv(CONTRACTS_ENV_VAR, raising=False)

        def f(x):
            return x

        assert shaped(x=("N",))(f) is f

    def test_falsy_values_disable(self, monkeypatch):
        for value in ("0", "off", "", "no"):
            monkeypatch.setenv(CONTRACTS_ENV_VAR, value)

            def f(x):
                return x

            assert shaped(x=("N",))(f) is f

    def test_enabled_wraps_and_exposes_specs(self):
        @shaped(x=("N",))
        def f(x):
            return x

        assert hasattr(f, "__repro_contracts__")
        assert f.__repro_contracts__["x"].shape == ("N",)

    def test_hot_path_functions_are_decorated(self):
        from repro.core.correction import linear_phase_residual
        from repro.core.engine import build_steering_entry
        from repro.core.peaks import find_peaks

        for fn in (linear_phase_residual, build_steering_entry, find_peaks):
            assert hasattr(fn, "__repro_contracts__"), fn


class TestShapeChecks:
    def test_matching_call_passes_through(self):
        @shaped(a=("N", 2), b=("N",))
        def f(a, b):
            return a.shape[0]

        assert f(np.zeros((5, 2)), np.zeros(5)) == 5

    def test_wrong_ndim(self):
        @shaped(a=("N", 2))
        def f(a):
            return a

        with pytest.raises(ContractViolation, match="2-D"):
            f(np.zeros(5))

    def test_exact_axis_size(self):
        @shaped(a=("N", 2))
        def f(a):
            return a

        with pytest.raises(ContractViolation, match="axis 1"):
            f(np.zeros((5, 3)))

    def test_dim_variable_bound_across_params(self):
        @shaped(a=("N",), b=("N",))
        def f(a, b):
            return a

        f(np.zeros(4), np.zeros(4))
        with pytest.raises(ContractViolation, match="already 4"):
            f(np.zeros(4), np.zeros(5))

    def test_independent_dim_tokens_allow_different_sizes(self):
        @shaped(a=("M",), b=("L",))
        def f(a, b):
            return a

        f(np.zeros(4), np.zeros(9))  # must not raise

    def test_none_axis_matches_anything(self):
        @shaped(a=(None, 2))
        def f(a):
            return a

        f(np.zeros((1, 2)))
        f(np.zeros((99, 2)))


class TestDtypeChecks:
    def test_shared_dtype_kind(self):
        @shaped(dtype=np.complexfloating, alpha=("I", "J", "K"))
        def f(alpha):
            return alpha

        f(np.zeros((2, 3, 4), dtype=np.complex128))
        f(np.zeros((2, 3, 4), dtype=np.complex64))
        with pytest.raises(ContractViolation, match="dtype"):
            f(np.zeros((2, 3, 4)))

    def test_arr_spec_overrides_shared_dtype(self):
        @shaped(dtype=np.complexfloating, x=arr(("N",), np.floating))
        def f(x):
            return x

        f(np.zeros(3))  # float accepted via the override
        with pytest.raises(ContractViolation):
            f(np.zeros(3, dtype=np.complex128))


class TestCallMechanics:
    def test_none_and_omitted_args_skipped(self):
        @shaped(a=("N",), b=("N",))
        def f(a, b=None):
            return a

        f(np.zeros(3))
        f(np.zeros(3), None)

    def test_kwargs_checked_too(self):
        @shaped(a=("N", 2))
        def f(a):
            return a

        with pytest.raises(ContractViolation):
            f(a=np.zeros(3))

    def test_signature_errors_stay_native(self):
        @shaped(a=("N",))
        def f(a):
            return a

        with pytest.raises(TypeError):
            f(np.zeros(3), np.zeros(3), np.zeros(3))

    def test_unknown_parameter_rejected_at_decoration(self):
        with pytest.raises(ConfigurationError, match="unknown parameter"):

            @shaped(nope=("N",))
            def f(a):
                return a

    def test_method_contract(self):
        class Holder:
            @shaped(alpha=arr(("J", "K"), np.complexfloating))
            def use(self, alpha):
                return alpha.shape

        h = Holder()
        assert h.use(np.zeros((2, 3), complex)) == (2, 3)
        with pytest.raises(ContractViolation):
            h.use(np.zeros((2, 3)))

    def test_violation_is_repro_error(self):
        from repro.errors import ReproError

        assert issubclass(ContractViolation, ReproError)


class TestPipelineContractsLive:
    """The decorated pipeline functions actually reject bad inputs."""

    def test_linear_phase_residual_rejects_real_alpha(self):
        from repro.core.correction import linear_phase_residual

        with pytest.raises(ContractViolation):
            linear_phase_residual(np.zeros((2, 3, 4)))

    def test_anchor_likelihood_flat_rejects_mismatched_points(self):
        from repro.core.likelihood import anchor_likelihood_flat

        with pytest.raises(ContractViolation):
            anchor_likelihood_flat(
                None, 0, np.zeros((10, 3)), np.zeros(10)
            )

    def test_find_peaks_rejects_flat_vector(self):
        from repro.core.peaks import find_peaks
        from repro.utils.gridmap import Grid2D

        grid = Grid2D(0.0, 1.0, 0.0, 1.0, 0.5)
        with pytest.raises(ContractViolation):
            find_peaks(np.zeros(9), grid)
