"""Baseline waiver mechanics: round-trip, first-N marking, interaction
with noqa suppression, and the never-grow ratchet property."""

from __future__ import annotations

import json

import pytest

from repro.analysis.baseline import (
    BASELINE_FORMAT,
    DEFAULT_BASELINE_PATH,
    apply_baseline,
    baseline_from_report,
    load_baseline,
    write_baseline,
)
from repro.analysis.concurrency import concurrency_rules
from repro.analysis.linting import LintEngine, LintReport

DIRTY = '''\
def never_closed(path):
    fh = open(path)
    return fh.read()


def also_never_closed(path):
    fh = open(path)
    return fh.readlines()


def waived_leak(path):
    fh = open(path)  # repro: noqa[RPR015] -- test waiver
    return fh.read()
'''


def dirty_report() -> LintReport:
    engine = LintEngine(rules=concurrency_rules())
    report = LintReport()
    report.findings.extend(
        engine.lint_source(DIRTY, path="pkg/leaky.py", rel="pkg/leaky.py")
    )
    report.files_checked = 1
    return report


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / DEFAULT_BASELINE_PATH
        write_baseline(path, {"pkg/leaky.py::RPR015": 2})
        assert load_baseline(path) == {"pkg/leaky.py::RPR015": 2}
        payload = json.loads(path.read_text())
        assert payload["format"] == BASELINE_FORMAT
        assert payload["version"] == 1
        assert "shrink" in payload["comment"]

    def test_keys_are_sorted(self, tmp_path):
        path = tmp_path / "b.json"
        write_baseline(path, {"z.py::RPR015": 1, "a.py::RPR013": 1})
        payload = json.loads(path.read_text())
        assert list(payload["waivers"]) == [
            "a.py::RPR013",
            "z.py::RPR015",
        ]

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "typing_baseline.json"
        path.write_text(json.dumps({"format": "repro-typing-baseline"}))
        with pytest.raises(ValueError, match="not a repro-lint-baseline"):
            load_baseline(path)


class TestBaselineFromReport:
    def test_counts_active_findings_per_key(self):
        waivers = baseline_from_report(dirty_report())
        assert waivers == {"pkg/leaky.py::RPR015": 2}

    def test_suppressed_findings_are_not_waived(self):
        # The noqa'd leak is already handled; baselining it too would
        # hand out a spare waiver for a future regression.
        report = dirty_report()
        assert sum(1 for f in report.findings if f.suppressed) == 1
        assert sum(baseline_from_report(report).values()) == 2


class TestApplyBaseline:
    def test_exact_coverage_leaves_nothing_failing(self):
        report = apply_baseline(dirty_report(), {"pkg/leaky.py::RPR015": 2})
        assert report.failing == []
        assert len(report.baselined) == 2
        assert all(f.baselined for f in report.active)

    def test_first_n_marked_rest_fail(self):
        report = apply_baseline(dirty_report(), {"pkg/leaky.py::RPR015": 1})
        assert len(report.baselined) == 1
        assert len(report.failing) == 1
        # Deterministic order: the earlier finding consumes the waiver.
        assert report.baselined[0].line < report.failing[0].line

    def test_unknown_key_waives_nothing(self):
        report = apply_baseline(
            dirty_report(), {"other/module.py::RPR015": 5}
        )
        assert len(report.failing) == 2
        assert report.baselined == []

    def test_suppressed_findings_do_not_consume_waivers(self):
        # One waiver + one noqa: the waiver must land on an *active*
        # finding, not be burned by the suppressed one.
        report = apply_baseline(dirty_report(), {"pkg/leaky.py::RPR015": 1})
        assert not any(f.baselined for f in report.findings if f.suppressed)
        assert len(report.baselined) == 1

    def test_baselined_findings_render_tagged(self):
        report = apply_baseline(dirty_report(), {"pkg/leaky.py::RPR015": 2})
        assert all("[baselined]" in f.render() for f in report.baselined)

    def test_ratchet_shrinks_after_fixes(self):
        """Fix one leak, regenerate: the waiver count goes down."""
        report = dirty_report()
        before = baseline_from_report(report)
        fixed = DIRTY.replace(
            "def never_closed(path):\n    fh = open(path)\n    return fh.read()",
            "def now_closed(path):\n    with open(path) as fh:\n        return fh.read()",
        )
        engine = LintEngine(rules=concurrency_rules())
        after_report = LintReport()
        after_report.findings.extend(
            engine.lint_source(fixed, path="pkg/leaky.py", rel="pkg/leaky.py")
        )
        after = baseline_from_report(after_report)
        assert after == {"pkg/leaky.py::RPR015": 1}
        assert sum(after.values()) < sum(before.values())
