"""`repro lint` CLI: exit codes, JSON report artifact, rule listing."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main

CLEAN = "x = 1\n"
DIRTY = "def f(x):\n    return x == 0.5\n"
BROKEN = "def broken(:\n"


class TestLintCommand:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN)
        assert main(["lint", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_findings_exit_one(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(DIRTY)
        assert main(["lint", str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "RPR006" in captured.out
        assert "1 finding(s)" in captured.err

    def test_parse_error_exits_two(self, tmp_path):
        (tmp_path / "broken.py").write_text(BROKEN)
        assert main(["lint", str(tmp_path)]) == 2

    def test_json_output_artifact(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(DIRTY)
        artifact = tmp_path / "report.json"
        code = main(
            [
                "lint",
                str(tmp_path / "bad.py"),
                "--format",
                "json",
                "--output",
                str(artifact),
            ]
        )
        assert code == 1
        data = json.loads(artifact.read_text())
        assert data["format"] == "repro-lint"
        assert data["counts_by_rule"] == {"RPR006": 1}
        stdout = json.loads(capsys.readouterr().out)
        assert stdout == data

    def test_select_limits_rules(self, tmp_path):
        (tmp_path / "bad.py").write_text(DIRTY)
        assert main(["lint", str(tmp_path), "--select", "RPR009"]) == 0
        assert main(["lint", str(tmp_path), "--select", "rpr006"]) == 1

    def test_ignore_skips_rules(self, tmp_path):
        (tmp_path / "bad.py").write_text(DIRTY)
        assert main(["lint", str(tmp_path), "--ignore", "RPR006"]) == 0

    def test_unknown_select_is_usage_error(self, tmp_path):
        (tmp_path / "ok.py").write_text(CLEAN)
        with pytest.raises(SystemExit, match="unknown rule"):
            main(["lint", str(tmp_path), "--select", "NOPE999"])

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (f"RPR{i:03d}" for i in range(1, 11)):
            assert rule_id in out

    def test_suppressed_shown_on_request(self, tmp_path, capsys):
        (tmp_path / "waived.py").write_text(
            "def f(x):\n    return x == 0.5  # repro: noqa[RPR006]\n"
        )
        assert main(["lint", str(tmp_path), "--show-suppressed"]) == 0
        assert "[suppressed]" in capsys.readouterr().out
