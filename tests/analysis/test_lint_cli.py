"""`repro lint` CLI: exit codes, JSON report artifact, rule listing."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.__main__ import main

CLEAN = "x = 1\n"
DIRTY = "def f(x):\n    return x == 0.5\n"
BROKEN = "def broken(:\n"
LEAKY = "def leak(path):\n    fh = open(path)\n    return fh.read()\n"


class TestLintCommand:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN)
        assert main(["lint", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0 failing finding(s)" in out

    def test_findings_exit_one(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(DIRTY)
        assert main(["lint", str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "RPR006" in captured.out
        assert "1 failing finding(s)" in captured.err

    def test_parse_error_exits_two(self, tmp_path):
        (tmp_path / "broken.py").write_text(BROKEN)
        assert main(["lint", str(tmp_path)]) == 2

    def test_json_output_artifact(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(DIRTY)
        artifact = tmp_path / "report.json"
        code = main(
            [
                "lint",
                str(tmp_path / "bad.py"),
                "--format",
                "json",
                "--output",
                str(artifact),
            ]
        )
        assert code == 1
        data = json.loads(artifact.read_text())
        assert data["format"] == "repro-lint"
        assert data["counts_by_rule"] == {"RPR006": 1}
        stdout = json.loads(capsys.readouterr().out)
        assert stdout == data

    def test_select_limits_rules(self, tmp_path):
        (tmp_path / "bad.py").write_text(DIRTY)
        assert main(["lint", str(tmp_path), "--select", "RPR009"]) == 0
        assert main(["lint", str(tmp_path), "--select", "rpr006"]) == 1

    def test_ignore_skips_rules(self, tmp_path):
        (tmp_path / "bad.py").write_text(DIRTY)
        assert main(["lint", str(tmp_path), "--ignore", "RPR006"]) == 0

    def test_unknown_select_is_usage_error(self, tmp_path):
        (tmp_path / "ok.py").write_text(CLEAN)
        with pytest.raises(SystemExit, match="unknown rule"):
            main(["lint", str(tmp_path), "--select", "NOPE999"])

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (f"RPR{i:03d}" for i in range(1, 11)):
            assert rule_id in out

    def test_suppressed_shown_on_request(self, tmp_path, capsys):
        (tmp_path / "waived.py").write_text(
            "def f(x):\n    return x == 0.5  # repro: noqa[RPR006]\n"
        )
        assert main(["lint", str(tmp_path), "--show-suppressed"]) == 0
        assert "[suppressed]" in capsys.readouterr().out


class TestConcurrencyLint:
    def test_off_by_default(self, tmp_path):
        (tmp_path / "leaky.py").write_text(LEAKY)
        assert main(["lint", str(tmp_path)]) == 0

    def test_planted_violation_fails(self, tmp_path, capsys):
        (tmp_path / "leaky.py").write_text(LEAKY)
        code = main(["lint", str(tmp_path), "--concurrency", "--no-baseline"])
        assert code == 1
        captured = capsys.readouterr()
        assert "RPR015" in captured.out
        assert "1 failing finding(s)" in captured.err

    def test_select_enables_concurrency_rule_without_flag(self, tmp_path):
        (tmp_path / "leaky.py").write_text(LEAKY)
        assert main(["lint", str(tmp_path), "--select", "RPR015"]) == 1

    def test_list_rules_includes_concurrency(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RPR013", "RPR014", "RPR015"):
            assert rule_id in out

    def test_noqa_waives_concurrency_finding(self, tmp_path):
        (tmp_path / "waived.py").write_text(
            "def leak(path):\n"
            "    fh = open(path)  # repro: noqa[RPR015] -- handed to caller\n"
            "    return fh.read()\n"
        )
        assert main(["lint", str(tmp_path), "--concurrency"]) == 0

    def test_blanket_noqa_covers_concurrency_rules(self, tmp_path):
        (tmp_path / "waived.py").write_text(
            "def leak(path):\n"
            "    fh = open(path)  # repro: noqa -- blanket\n"
            "    return fh.read()\n"
        )
        assert main(["lint", str(tmp_path), "--concurrency"]) == 0


class TestBaselineCli:
    def test_update_baseline_writes_waivers(self, tmp_path, capsys):
        (tmp_path / "leaky.py").write_text(LEAKY)
        baseline = tmp_path / "waivers.json"
        code = main(
            [
                "lint",
                str(tmp_path),
                "--concurrency",
                "--update-baseline",
                "--baseline",
                str(baseline),
            ]
        )
        assert code == 0
        assert "wrote 1 waiver(s)" in capsys.readouterr().out
        waivers = json.loads(baseline.read_text())["waivers"]
        assert list(waivers.values()) == [1]
        assert list(waivers)[0].endswith("leaky.py::RPR015")

    def test_baselined_run_exits_zero(self, tmp_path, capsys):
        (tmp_path / "leaky.py").write_text(LEAKY)
        baseline = tmp_path / "waivers.json"
        main(
            [
                "lint",
                str(tmp_path),
                "--concurrency",
                "--update-baseline",
                "--baseline",
                str(baseline),
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "lint",
                str(tmp_path),
                "--concurrency",
                "--baseline",
                str(baseline),
                "--format",
                "json",
            ]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["num_failing"] == 0
        assert data["num_baselined"] == 1
        (baselined,) = [f for f in data["findings"] if f["baselined"]]
        assert baselined["rule"] == "RPR015"

    def test_new_debt_beyond_baseline_fails(self, tmp_path, capsys):
        (tmp_path / "leaky.py").write_text(LEAKY)
        baseline = tmp_path / "waivers.json"
        main(
            [
                "lint",
                str(tmp_path),
                "--concurrency",
                "--update-baseline",
                "--baseline",
                str(baseline),
            ]
        )
        capsys.readouterr()
        (tmp_path / "leaky.py").write_text(
            LEAKY + "\n\ndef second_leak(path):\n"
            "    fh = open(path)\n"
            "    return fh.read()\n"
        )
        code = main(
            [
                "lint",
                str(tmp_path),
                "--concurrency",
                "--baseline",
                str(baseline),
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "1 failing finding(s), 1 baselined" in captured.err

    def test_no_baseline_reports_everything(self, tmp_path, capsys):
        (tmp_path / "leaky.py").write_text(LEAKY)
        baseline = tmp_path / "waivers.json"
        main(
            [
                "lint",
                str(tmp_path),
                "--concurrency",
                "--update-baseline",
                "--baseline",
                str(baseline),
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "lint",
                str(tmp_path),
                "--concurrency",
                "--baseline",
                str(baseline),
                "--no-baseline",
            ]
        )
        assert code == 1

    def test_committed_baseline_is_empty(self):
        """The repo carries no concurrency debt: every violation found
        during the rollout was fixed, not waived."""
        from repro.analysis.baseline import (
            DEFAULT_BASELINE_PATH,
            load_baseline,
        )

        committed = (
            Path(__file__).resolve().parents[2] / DEFAULT_BASELINE_PATH
        )
        assert committed.is_file()
        assert load_baseline(committed) == {}
