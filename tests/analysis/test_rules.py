"""One fixture file per RPR rule: each rule catches its hazard and the
``# repro: noqa[RULE]`` comment suppresses it."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.linting import LintEngine
from repro.analysis.rules import ALL_RULES, MissingThreadSafetyTag

FIXTURES = Path(__file__).parent / "fixtures"


def lint_fixture(name: str, rules=None, rel=None):
    """Lint a fixture *as if* it lived under ``src/repro/core/``."""
    engine = LintEngine(rules=rules) if rules is not None else LintEngine()
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return engine.lint_source(
        source,
        path=str(FIXTURES / name),
        rel=rel or f"src/repro/core/{name}",
    )


def by_rule(findings, rule_id):
    return [f for f in findings if f.rule == rule_id]


class TestRuleFixtures:
    def test_every_rule_has_a_fixture(self):
        for cls in ALL_RULES:
            name = f"{cls.id.lower()}.py"
            assert (FIXTURES / name).is_file(), f"missing fixture {name}"

    def test_rpr001_complex_dtype_loss(self):
        found = by_rule(lint_fixture("rpr001.py"), "RPR001")
        active = [f for f in found if not f.suppressed]
        assert len(active) == 4
        messages = " | ".join(f.message for f in active)
        assert "np.float32()" in messages
        assert "np.abs(csi)" in messages
        assert "alpha.astype" in messages
        assert "dtype=np.complex64" in messages
        suppressed = [f for f in found if f.suppressed]
        assert len(suppressed) == 1

    def test_rpr002_nondeterminism(self):
        found = by_rule(lint_fixture("rpr002.py"), "RPR002")
        active = [f for f in found if not f.suppressed]
        assert len(active) == 3
        messages = " | ".join(f.message for f in active)
        assert "np.random.normal" in messages
        assert "random.random" in messages
        assert "time.time()" in messages
        assert len([f for f in found if f.suppressed]) == 1

    def test_rpr003_unlocked_mutation(self):
        found = by_rule(lint_fixture("rpr003.py"), "RPR003")
        active = [f for f in found if not f.suppressed]
        # item assignment + .append(); the `with _LOCK:` site is exempt.
        assert len(active) == 2
        assert any("item assignment" in f.message for f in active)
        assert any(".append()" in f.message for f in active)
        assert len([f for f in found if f.suppressed]) == 1

    def test_rpr004_unbalanced_span(self):
        found = by_rule(lint_fixture("rpr004.py"), "RPR004")
        active = [f for f in found if not f.suppressed]
        # bare-statement span + parked-in-variable span; `with` and
        # `return` usages are exempt.
        assert len(active) == 2
        assert any("discarded" in f.message for f in active)
        assert any("parked" in f.message for f in active)
        assert len([f for f in found if f.suppressed]) == 1

    def test_rpr005_metric_names(self):
        found = by_rule(lint_fixture("rpr005.py"), "RPR005")
        active = [f for f in found if not f.suppressed]
        assert len(active) == 4
        messages = " | ".join(f.message for f in active)
        assert "'bogus' is not registered" in messages
        assert "not lower_snake_case" in messages
        assert "at least `namespace.metric`" in messages
        assert "'Bogus' is not registered" in messages
        assert len([f for f in found if f.suppressed]) == 1

    def test_rpr006_float_equality(self):
        found = by_rule(lint_fixture("rpr006.py"), "RPR006")
        active = [f for f in found if not f.suppressed]
        assert len(active) == 2
        assert {f.line for f in active} == {5, 7}
        assert len([f for f in found if f.suppressed]) == 1

    def test_rpr007_mutable_defaults(self):
        found = by_rule(lint_fixture("rpr007.py"), "RPR007")
        active = [f for f in found if not f.suppressed]
        assert len(active) == 2
        assert all("mutable default" in f.message for f in active)
        assert len([f for f in found if f.suppressed]) == 1

    def test_rpr008_overbroad_except(self):
        found = by_rule(lint_fixture("rpr008.py"), "RPR008")
        active = [f for f in found if not f.suppressed]
        # bare except, except Exception, BaseException inside a tuple.
        assert len(active) == 3
        messages = " | ".join(f.message for f in active)
        assert "bare `except:`" in messages
        assert "except Exception" in messages
        assert "except BaseException" in messages
        assert len([f for f in found if f.suppressed]) == 1

    def test_rpr009_magic_constants(self):
        found = by_rule(lint_fixture("rpr009.py"), "RPR009")
        active = [f for f in found if not f.suppressed]
        assert len(active) == 2
        messages = " | ".join(f.message for f in active)
        assert "SPEED_OF_LIGHT" in messages
        assert "BLE_BAND_START_HZ" in messages
        assert len([f for f in found if f.suppressed]) == 1

    def test_rpr009_skips_constants_module(self):
        source = "SPEED_OF_LIGHT = 299792458.0\n"
        engine = LintEngine()
        findings = engine.lint_source(
            source, rel="src/repro/constants.py"
        )
        assert by_rule(findings, "RPR009") == []

    def test_rpr010_thread_safety_tags(self):
        rule = MissingThreadSafetyTag(
            required={
                "fixtures/rpr010.py": (
                    "Cache.entry_for",
                    "Cache.tagged",
                    "Cache.waived",
                )
            }
        )
        found = by_rule(
            lint_fixture(
                "rpr010.py",
                rules=[rule],
                rel="tests/analysis/fixtures/rpr010.py",
            ),
            "RPR010",
        )
        active = [f for f in found if not f.suppressed]
        assert len(active) == 1
        assert "Cache.entry_for" in active[0].message
        assert len([f for f in found if f.suppressed]) == 1

    def test_rpr011_direct_shared_memory(self):
        found = by_rule(lint_fixture("rpr011.py"), "RPR011")
        active = [f for f in found if not f.suppressed]
        assert len(active) == 2
        messages = " | ".join(f.message for f in active)
        assert "shared_memory.SharedMemory" in messages
        assert len([f for f in found if f.suppressed]) == 1

    def test_rpr012_untraced_handlers(self):
        found = by_rule(
            lint_fixture("rpr012.py", rel="src/repro/service/app.py"),
            "RPR012",
        )
        active = [f for f in found if not f.suppressed]
        assert len(active) == 2
        messages = " | ".join(f.message for f in active)
        assert "handle_untraced" in messages
        assert "handle_span_without_trace" in messages
        assert len([f for f in found if f.suppressed]) == 1

    def test_rpr012_quiet_outside_handler_files(self):
        source = "def handle_x(raw):\n    return 200, {}, {}\n"
        findings = LintEngine().lint_source(
            source, rel="src/repro/service/batcher.py"
        )
        assert by_rule(findings, "RPR012") == []

    def test_rpr011_exempts_the_engine_module(self):
        source = (
            "from multiprocessing import shared_memory\n\n\n"
            "def publish():\n"
            "    return shared_memory.SharedMemory(create=True, size=16)\n"
        )
        findings = LintEngine().lint_source(
            source, rel="src/repro/core/parallel.py"
        )
        assert by_rule(findings, "RPR011") == []


class TestScoping:
    """Scoped rules stay quiet outside their directories."""

    @pytest.mark.parametrize(
        "rel, expected",
        [("src/repro/core/x.py", 1), ("src/repro/viz/x.py", 0)],
    )
    def test_rpr001_scope(self, rel, expected):
        source = "import numpy as np\n\n\ndef f(csi):\n    return np.abs(csi)\n"
        findings = LintEngine().lint_source(source, rel=rel)
        assert len(by_rule(findings, "RPR001")) == expected

    @pytest.mark.parametrize(
        "rel, expected",
        [("src/repro/sim/x.py", 1), ("src/repro/viz/x.py", 0)],
    )
    def test_rpr002_scope(self, rel, expected):
        source = "import time\n\n\ndef f():\n    return time.time()\n"
        findings = LintEngine().lint_source(source, rel=rel)
        assert len(by_rule(findings, "RPR002")) == expected

    def test_unscoped_rule_applies_everywhere(self):
        source = "def f(x):\n    return x == 0.5\n"
        findings = LintEngine().lint_source(source, rel="scripts/tool.py")
        assert len(by_rule(findings, "RPR006")) == 1


class TestLandedTreeIsClean:
    def test_src_tree_has_no_active_findings(self):
        root = Path(__file__).resolve().parents[2] / "src"
        report = LintEngine().lint_paths([root])
        assert report.files_checked > 50
        rendered = "\n".join(f.render() for f in report.active)
        assert report.active == [], f"lint regressions:\n{rendered}"
