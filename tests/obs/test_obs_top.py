"""Tests for the `repro obs top` dashboard: frame building, rendering,
and the rotation-aware access-log tailer."""

from __future__ import annotations

import io
import json
import os

import pytest

from repro.obs.top import (
    AccessLogTail,
    build_frame,
    read_access_records,
    render_frame,
    run_top,
)


def _record(ts, status=200, provider="bloc", latency_s=0.05, trace_id=""):
    return {
        "ts": ts,
        "status": status,
        "provider": provider,
        "latency_s": latency_s,
        "trace_id": trace_id,
    }


class TestReadAccessRecords:
    def test_missing_file_is_empty(self, tmp_path):
        assert read_access_records(tmp_path / "nope.ndjson") == []

    def test_malformed_lines_skipped(self, tmp_path):
        path = tmp_path / "access.ndjson"
        path.write_text(
            json.dumps(_record(1.0)) + "\n"
            + "{torn line\n"
            + "[1, 2]\n"
            + json.dumps(_record(2.0)) + "\n"
        )
        records = read_access_records(path)
        assert [r["ts"] for r in records] == [1.0, 2.0]


class TestBuildFrame:
    def test_empty_records_give_empty_frame(self):
        frame = build_frame([], window_s=60.0)
        assert frame.requests == 0
        assert frame.rps == 0.0

    def test_window_anchors_on_newest_record(self):
        records = [_record(0.0), _record(100.0), _record(110.0)]
        frame = build_frame(records, window_s=60.0)
        assert frame.requests == 2  # ts=0 fell out of the window

    def test_error_rate_counts_non_2xx(self):
        records = [
            _record(1.0, status=200),
            _record(2.0, status=429),
            _record(3.0, status=503),
            _record(4.0, status=200),
        ]
        frame = build_frame(records, window_s=60.0)
        assert frame.error_rate == pytest.approx(0.5)
        assert frame.statuses == {"200": 2, "429": 1, "503": 1}

    def test_fallback_rate_is_non_bloc_share(self):
        records = [
            _record(1.0, provider="bloc"),
            _record(2.0, provider="bloc"),
            _record(3.0, provider="aoa"),
            _record(4.0, provider="rssi"),
        ]
        frame = build_frame(records, window_s=60.0)
        assert frame.fallback_rate == pytest.approx(0.5)
        assert frame.providers == {"bloc": 2, "aoa": 1, "rssi": 1}

    def test_latency_quantiles_in_ms(self):
        records = [
            _record(float(i), latency_s=0.010 * (i + 1))
            for i in range(10)
        ]
        frame = build_frame(records, window_s=60.0)
        assert frame.latency_ms["p50"] == pytest.approx(55.0, abs=10.0)
        assert frame.latency_ms["p99"] <= 100.0 + 1e-6

    def test_slowest_request_trace_id_surfaces(self):
        records = [
            _record(1.0, latency_s=0.02, trace_id="aa" * 16),
            _record(2.0, latency_s=0.90, trace_id="bb" * 16),
            _record(3.0, latency_s=0.05, trace_id="cc" * 16),
        ]
        frame = build_frame(records, window_s=60.0)
        assert frame.slowest_trace_id == "bb" * 16
        assert frame.slowest_latency_ms == pytest.approx(900.0)

    def test_explicit_now_shifts_the_window(self):
        records = [_record(10.0), _record(100.0)]
        frame = build_frame(records, window_s=30.0, now=35.0)
        assert frame.requests == 1


class TestRenderFrame:
    def test_shows_rates_providers_and_stats(self):
        records = [
            _record(1.0, provider="bloc", trace_id="ab" * 16),
            _record(
                2.0, provider="aoa", latency_s=0.4, trace_id="cd" * 16
            ),
        ]
        stats = {
            "cache": {
                "hits": 9,
                "misses": 1,
                "entries": 2,
                "hit_ratio": 0.9,
            },
            "pool": {"warmth": {"vicon": True, "open_room": False}},
            "batchers": {
                "vicon": {
                    "mean_batch": 2.5,
                    "max_batch": 8,
                    "queue_depth": 0,
                    "batches_total": 4,
                }
            },
        }
        text = render_frame(
            build_frame(records, window_s=60.0, stats=stats)
        )
        assert "requests" in text and "rps" in text
        assert "bloc" in text and "aoa" in text
        assert "hit ratio 90.0%" in text
        assert "vicon:warm" in text and "open_room:cold" in text
        assert "occupancy 2.50/8" in text
        assert "slowest" in text  # the 0.4 s aoa request

    def test_empty_frame_renders_without_error(self):
        text = render_frame(build_frame([], window_s=60.0))
        assert "requests" in text


class TestAccessLogTail:
    def test_incremental_polls(self, tmp_path):
        path = tmp_path / "access.ndjson"
        tail = AccessLogTail(path)
        assert tail.poll() == []
        with path.open("a") as fh:
            fh.write(json.dumps(_record(1.0)) + "\n")
        assert [r["ts"] for r in tail.poll()] == [1.0]
        with path.open("a") as fh:
            fh.write(json.dumps(_record(2.0)) + "\n")
        assert [r["ts"] for r in tail.poll()] == [2.0]
        assert tail.poll() == []

    def test_rotation_restarts_at_new_file(self, tmp_path):
        path = tmp_path / "access.ndjson"
        tail = AccessLogTail(path)
        path.write_text(
            json.dumps(_record(1.0)) + "\n"
            + json.dumps(_record(2.0)) + "\n"
        )
        assert len(tail.poll()) == 2
        # Size-based rotation: the service renames and starts fresh.
        os.replace(path, str(path) + ".1")
        path.write_text(json.dumps(_record(3.0)) + "\n")
        assert [r["ts"] for r in tail.poll()] == [3.0]

    def test_torn_tail_reread_on_next_poll(self, tmp_path):
        path = tmp_path / "access.ndjson"
        tail = AccessLogTail(path)
        with path.open("a") as fh:
            fh.write(json.dumps(_record(1.0)) + "\n")
            fh.write('{"ts": 2.0')  # no newline: mid-write
        assert [r["ts"] for r in tail.poll()] == [1.0]
        with path.open("a") as fh:
            fh.write(', "status": 200}\n')
        assert [r["ts"] for r in tail.poll()] == [2.0]


class TestRunTop:
    def test_single_frame_scripting_mode(self, tmp_path):
        path = tmp_path / "access.ndjson"
        path.write_text(
            json.dumps(_record(1.0, trace_id="ab" * 16)) + "\n"
        )
        out = io.StringIO()
        rendered = run_top(path, frames=1, out=out, clear=False)
        assert rendered == 1
        text = out.getvalue()
        assert "requests" in text
        assert "\x1b[" not in text  # no ANSI codes in --once mode

    def test_rotated_generation_included(self, tmp_path):
        path = tmp_path / "access.ndjson"
        (tmp_path / "access.ndjson.1").write_text(
            json.dumps(_record(1.0)) + "\n"
        )
        path.write_text(json.dumps(_record(2.0)) + "\n")
        out = io.StringIO()
        run_top(path, frames=1, out=out, clear=False)
        assert "requests      2" in out.getvalue()
