"""Tests for repro.obs.diag: fix diagnostics, bundles, replay."""

from __future__ import annotations

import hashlib
import zipfile

import numpy as np
import pytest

from repro import (
    BlocConfig,
    BlocLocalizer,
    ChannelMeasurementModel,
    Point,
    vicon_testbed,
)
from repro.errors import ConfigurationError, LocalizationError
from repro.obs.diag import (
    FIX_STAGES,
    FixDiagnostics,
    bundle_filename,
    bundle_from_fix,
    load_fix_bundle,
    render_bundle,
    save_fix_bundle,
)
from repro.sim import inject_band_outage


@pytest.fixture(scope="module")
def observations():
    model = ChannelMeasurementModel(testbed=vicon_testbed(), seed=3)
    return model.measure(Point(0.6, 0.3))


@pytest.fixture(scope="module")
def localizer():
    # Coarse grid keeps the module-scoped fixtures fast.
    return BlocLocalizer(config=BlocConfig(grid_resolution_m=0.15))


@pytest.fixture(scope="module")
def located(observations, localizer):
    return localizer.locate(observations, diagnostics=True)


@pytest.fixture(scope="module")
def bundle(observations, localizer, located):
    return bundle_from_fix(
        observations,
        localizer,
        label="BLoc test",
        fix_index=7,
        estimate=located.position,
        error_m=located.error_m(observations.ground_truth),
        diagnostics=located.diagnostics,
    )


class TestFixDiagnostics:
    def test_all_stages_filled_on_success(self, located):
        diag = located.diagnostics
        assert isinstance(diag, FixDiagnostics)
        assert diag.stage_reached == FIX_STAGES[-1] == "located"
        assert diag.band_quality is not None
        assert diag.correction is not None
        assert diag.likelihood_map is not None
        assert diag.scores is not None
        assert diag.estimate_xy == (
            float(located.position.x),
            float(located.position.y),
        )

    def test_band_quality_shapes(self, located, observations):
        bq = located.diagnostics.band_quality
        shape = (observations.num_anchors, observations.num_bands)
        assert bq.snr_db.shape == shape
        assert bq.amplitude_db.shape == shape
        assert bq.missing.shape == shape
        assert bq.flatness_db.shape == (observations.num_anchors,)
        assert np.all(bq.coverage() >= 0) and np.all(bq.coverage() <= 1)

    def test_score_breakdown_reconstructs_eq18(self, located):
        scores = located.diagnostics.scores
        assert scores.num_candidates >= 1
        # Eq. 18: s = p * exp(b*H) * exp(-a * sum d)
        np.testing.assert_allclose(
            scores.score,
            scores.likelihood * scores.entropy_term * scores.path_term,
            rtol=1e-9,
        )
        # The chosen candidate (index 0) wins under the score strategy.
        assert scores.score[0] == pytest.approx(scores.score.max())
        assert 0.0 <= scores.margin <= 1.0

    def test_disabled_by_default(self, observations, localizer):
        assert localizer.locate(observations).diagnostics is None

    def test_failure_attaches_partial_diagnostics(self, observations):
        # Degenerate peak config: nothing survives, scoring never runs.
        strict = BlocLocalizer(
            config=BlocConfig(grid_resolution_m=0.15, refine_peaks=False)
        )
        object.__setattr__(strict.config.peak, "min_relative_value", 1.1)
        with pytest.raises(LocalizationError) as excinfo:
            strict.locate(observations, diagnostics=True)
        diag = excinfo.value.diagnostics
        assert isinstance(diag, FixDiagnostics)
        assert diag.stage_reached in FIX_STAGES
        assert diag.stage_reached != "located"
        assert diag.band_quality is not None


class TestBundleRoundTrip:
    def test_save_load_save_is_byte_stable(self, bundle, tmp_path):
        first = tmp_path / "a.npz"
        second = tmp_path / "b.npz"
        save_fix_bundle(first, bundle)
        save_fix_bundle(second, load_fix_bundle(first))
        digest = lambda p: hashlib.sha256(p.read_bytes()).hexdigest()
        assert digest(first) == digest(second)

    def test_repeated_save_identical(self, bundle, tmp_path):
        paths = [tmp_path / "x.npz", tmp_path / "y.npz"]
        blobs = {save_fix_bundle(p, bundle).read_bytes() for p in paths}
        assert len(blobs) == 1

    def test_round_trip_preserves_payload(self, bundle, tmp_path):
        path = save_fix_bundle(tmp_path / "fix.npz", bundle)
        loaded = load_fix_bundle(path)
        assert loaded.label == bundle.label
        assert loaded.fix_index == bundle.fix_index
        assert loaded.engine_used == bundle.engine_used
        assert loaded.estimate_xy == bundle.estimate_xy
        assert loaded.error_m == bundle.error_m
        assert loaded.config == bundle.config
        np.testing.assert_array_equal(
            loaded.tag_to_anchor, bundle.tag_to_anchor
        )
        np.testing.assert_array_equal(
            loaded.frequencies_hz, bundle.frequencies_hz
        )
        diag = loaded.diagnostics
        assert diag.stage_reached == bundle.diagnostics.stage_reached
        np.testing.assert_array_equal(
            diag.band_quality.missing, bundle.diagnostics.band_quality.missing
        )

    def test_replay_is_bit_exact(self, bundle, tmp_path, located):
        loaded = load_fix_bundle(save_fix_bundle(tmp_path / "fix.npz", bundle))
        replayed = loaded.replay()
        assert float(replayed.position.x) == float(located.position.x)
        assert float(replayed.position.y) == float(located.position.y)

    def test_load_rejects_non_zip(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"not a zip archive")
        with pytest.raises(ConfigurationError):
            load_fix_bundle(path)

    def test_load_rejects_foreign_zip(self, tmp_path):
        path = tmp_path / "foreign.npz"
        with zipfile.ZipFile(path, "w") as archive:
            archive.writestr("something.txt", "hello")
        with pytest.raises(ConfigurationError):
            load_fix_bundle(path)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises((ConfigurationError, OSError)):
            load_fix_bundle(tmp_path / "absent.npz")


class TestBundleFilename:
    def test_sanitizes_label(self):
        assert bundle_filename("BLoc run #2", 4) == "BLoc-run-2-00004.npz"

    def test_empty_label_falls_back(self):
        assert bundle_filename("///", 0) == "fix-00000.npz"


class TestRendering:
    def test_render_bundle_mentions_anchors_and_score(self, bundle):
        text = render_bundle(bundle)
        for anchor in bundle.anchors:
            assert anchor["name"] in text
        assert "score" in text.lower()

    def test_render_explain_reports_bit_exact(self, bundle):
        text = render_bundle(bundle, explain=True)
        assert "bit-exact match with recorded estimate" in text

    def test_render_bands_lists_every_band(self, bundle):
        text = render_bundle(bundle, bands=True)
        assert str(bundle.frequencies_hz.size - 1) in text


class TestBandOutageDiagnostics:
    def test_outage_visible_in_band_quality(self, observations, localizer):
        bands = [2, 3, 4, 5, 6, 7, 8, 9, 10, 11]
        broken = inject_band_outage(observations, 1, bands)
        diag = localizer.locate(broken, diagnostics=True).diagnostics
        missing = diag.band_quality.missing
        assert missing[1, bands].all()
        healthy = [i for i in range(missing.shape[0]) if i != 1]
        assert not missing[healthy][:, bands].any()
