"""Tests for repro.obs.health: anchor health monitor and anomalies."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BlocConfig,
    BlocLocalizer,
    ChannelMeasurementModel,
    Point,
    vicon_testbed,
)
from repro.errors import ConfigurationError
from repro.obs import Observability
from repro.obs.diag import BandQuality, CorrectionDiagnostics, FixDiagnostics
from repro.obs.health import (
    ANOMALY_KINDS,
    AnchorHealthMonitor,
    HealthThresholds,
)
from repro.sim import inject_band_outage

ANCHORS = ["AP0", "AP1"]
NUM_BANDS = 8


def make_diag(
    missing_bands=(),
    snr_db=20.0,
    residual_rad=0.2,
    anchor=0,
):
    """Synthetic two-anchor diagnostics; faults applied to one anchor."""
    num = len(ANCHORS)
    missing = np.zeros((num, NUM_BANDS), dtype=bool)
    missing[anchor, list(missing_bands)] = True
    snr = np.full((num, NUM_BANDS), 20.0)
    snr[anchor] = snr_db
    snr[missing] = np.nan
    residual = np.full(num, 0.2)
    residual[anchor] = residual_rad
    quality = BandQuality(
        source="demod",
        snr_db=snr,
        amplitude_db=np.zeros((num, NUM_BANDS)),
        flatness_db=np.zeros(num),
        missing=missing,
    )
    correction = CorrectionDiagnostics(
        residual_rms_rad=residual,
        residual_per_band_rad=np.zeros((num, NUM_BANDS)),
        seam_jump_rad=np.zeros((num, NUM_BANDS - 1)),
        worst_seam_rad=0.0,
        hop_coverage=float(1.0 - missing.mean()),
    )
    return FixDiagnostics(
        anchor_names=list(ANCHORS),
        frequencies_hz=np.linspace(2.402e9, 2.48e9, NUM_BANDS),
        stage_reached="located",
        band_quality=quality,
        correction=correction,
    )


class TestThresholds:
    def test_defaults_valid(self):
        HealthThresholds()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"outage_missing_fraction": 1.5},
            {"outage_missing_fraction": -0.1},
            {"drift_residual_rad": 0.0},
            {"low_snr_fixes": 0},
            {"stale_fixes": 0},
            {"window": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            HealthThresholds(**kwargs)


class TestBandOutage:
    def test_fires_on_affected_anchor_only(self):
        monitor = AnchorHealthMonitor()
        events = monitor.observe(make_diag(missing_bands=range(4)), 0)
        assert [e.kind for e in events] == ["band_outage"]
        assert events[0].anchor == "AP0"
        assert "4/8 bands unusable" in events[0].message
        assert monitor.events_for("band_outage", "AP1") == []

    def test_below_fraction_does_not_fire(self):
        monitor = AnchorHealthMonitor()
        assert monitor.observe(make_diag(missing_bands=[0]), 0) == []

    def test_edge_triggered_and_rearms(self):
        monitor = AnchorHealthMonitor()
        broken = make_diag(missing_bands=range(4))
        assert len(monitor.observe(broken, 0)) == 1
        # Still broken: no duplicate event while the condition holds.
        assert monitor.observe(broken, 1) == []
        # Recovery clears the latch ...
        assert monitor.observe(make_diag(), 2) == []
        # ... so a relapse fires again.
        relapse = monitor.observe(broken, 3)
        assert [e.kind for e in relapse] == ["band_outage"]
        assert len(monitor.events_for("band_outage")) == 2


class TestDriftAndStreaks:
    def test_phase_offset_drift(self):
        monitor = AnchorHealthMonitor()
        events = monitor.observe(make_diag(residual_rad=1.4, anchor=1), 0)
        assert [(e.kind, e.anchor) for e in events] == [
            ("phase_offset_drift", "AP1")
        ]
        assert events[0].value == pytest.approx(1.4)

    def test_low_snr_needs_consecutive_fixes(self):
        monitor = AnchorHealthMonitor(
            thresholds=HealthThresholds(low_snr_fixes=3)
        )
        quiet = make_diag(snr_db=2.0)
        assert monitor.observe(quiet, 0) == []
        assert monitor.observe(quiet, 1) == []
        events = monitor.observe(quiet, 2)
        assert [e.kind for e in events] == ["low_snr"]
        assert events[0].fix_index == 2

    def test_low_snr_streak_broken_by_good_fix(self):
        monitor = AnchorHealthMonitor(
            thresholds=HealthThresholds(low_snr_fixes=2)
        )
        quiet = make_diag(snr_db=2.0)
        assert monitor.observe(quiet, 0) == []
        assert monitor.observe(make_diag(), 1) == []
        assert monitor.observe(quiet, 2) == []

    def test_stale_anchor(self):
        monitor = AnchorHealthMonitor(
            thresholds=HealthThresholds(stale_fixes=2)
        )
        dead = make_diag(missing_bands=range(NUM_BANDS))
        first = monitor.observe(dead, 0)
        assert [e.kind for e in first] == ["band_outage"]
        second = monitor.observe(dead, 1)
        assert [e.kind for e in second] == ["stale_anchor"]
        assert second[0].anchor == "AP0"


class TestMetricsExport:
    def test_gauges_and_counters_under_observer(self):
        observer = Observability(enabled=True)
        monitor = AnchorHealthMonitor(observer=observer)
        monitor.observe(make_diag(missing_bands=range(4)), 0)
        snapshot = {
            m["name"]: m for m in observer.metrics.snapshot()
        }
        assert snapshot["health.anomalies.band_outage"]["value"] == 1
        gauge = snapshot["health.anchor.AP0.band_coverage"]
        assert gauge["value"] == pytest.approx(0.5)
        assert np.isfinite(snapshot["health.anchor.AP1.snr_db"]["value"])

    def test_disabled_observer_records_nothing(self):
        observer = Observability(enabled=False)
        monitor = AnchorHealthMonitor(observer=observer)
        events = monitor.observe(make_diag(missing_bands=range(4)), 0)
        assert len(events) == 1  # detection still works
        names = {m["name"] for m in observer.metrics.snapshot()}
        assert not any(n.startswith("health.anchor.") for n in names)

    def test_summary_rows_cover_all_anchors(self):
        monitor = AnchorHealthMonitor()
        monitor.observe(make_diag(), 0)
        rows = monitor.summary_rows()
        assert [row[0] for row in rows] == ANCHORS


class TestAcceptanceInjectedOutage:
    """ISSUE acceptance: an injected single-anchor band outage raises
    ``band_outage`` on the correct anchor."""

    def test_injected_outage_flags_correct_anchor(self):
        model = ChannelMeasurementModel(testbed=vicon_testbed(), seed=11)
        observations = model.measure(Point(0.4, -0.2))
        victim = 2
        bands = list(range(observations.num_bands // 2))
        broken = inject_band_outage(observations, victim, bands)
        localizer = BlocLocalizer(
            config=BlocConfig(grid_resolution_m=0.15)
        )
        diag = localizer.locate(broken, diagnostics=True).diagnostics
        monitor = AnchorHealthMonitor()
        events = monitor.observe(diag, 0)
        outages = [e for e in events if e.kind == "band_outage"]
        assert len(outages) == 1
        assert outages[0].anchor == broken.anchors[victim].name
        assert all(kind in ANOMALY_KINDS for kind in (e.kind for e in events))
