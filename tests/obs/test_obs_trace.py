"""Tests for repro.obs.trace: span nesting, ordering, exceptions."""

from __future__ import annotations

import threading

import pytest

from repro.obs.trace import Tracer


class FakeClock:
    """Deterministic clock advancing a fixed step per reading."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestNesting:
    def test_parent_child_linkage(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.depth == 1
            assert outer.depth == 0
        assert outer.parent_id is None

    def test_finished_in_completion_order(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        names = [s.name for s in tracer.finished()]
        assert names == ["c", "b", "a"]

    def test_siblings_share_parent(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("root") as root:
            with tracer.span("s1") as s1:
                pass
            with tracer.span("s2") as s2:
                pass
        assert s1.parent_id == root.span_id
        assert s2.parent_id == root.span_id
        assert s2.span_id > s1.span_id

    def test_active_tracks_innermost(self):
        tracer = Tracer(clock=FakeClock())
        assert tracer.active() is None
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                assert tracer.active() is inner
        assert tracer.active() is None


class TestDurationsAndStatus:
    def test_durations_from_clock(self):
        tracer = Tracer(clock=FakeClock(step=0.5))
        with tracer.span("timed") as span:
            pass
        assert span.duration_s == pytest.approx(0.5)

    def test_exception_marks_status_and_unwinds_stack(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        spans = {s.name: s for s in tracer.finished()}
        assert spans["inner"].status == "error:ValueError"
        assert spans["outer"].status == "error:ValueError"
        assert tracer.active() is None  # stack fully unwound

    def test_sibling_after_exception_reparents_correctly(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("root") as root:
            with pytest.raises(RuntimeError):
                with tracer.span("failing"):
                    raise RuntimeError
            with tracer.span("recovered") as recovered:
                pass
        assert recovered.parent_id == root.span_id
        assert recovered.status == "ok"

    def test_attributes_recorded(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("fix", index=3) as span:
            span.set(label="bloc")
        finished = tracer.finished()[0]
        assert finished.attributes == {"index": 3, "label": "bloc"}


class TestThreads:
    def test_stacks_are_thread_local(self):
        tracer = Tracer()
        seen = {}

        def worker(name):
            with tracer.span(name) as span:
                seen[name] = span.parent_id

        with tracer.span("main-root"):
            threads = [
                threading.Thread(target=worker, args=(f"w{i}",))
                for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # Worker spans must be roots: the main thread's open span is not
        # their parent.
        assert all(parent is None for parent in seen.values())
        assert len(tracer.finished()) == 5

    def test_reset_clears_finished(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("x"):
            pass
        assert len(tracer) == 1
        tracer.reset()
        assert tracer.finished() == []
