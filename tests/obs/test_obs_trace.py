"""Tests for repro.obs.trace: span nesting, ordering, exceptions."""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.obs.trace import SpanHandle, Tracer


class FakeClock:
    """Deterministic clock advancing a fixed step per reading."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestNesting:
    def test_parent_child_linkage(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.depth == 1
            assert outer.depth == 0
        assert outer.parent_id is None

    def test_finished_in_completion_order(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        names = [s.name for s in tracer.finished()]
        assert names == ["c", "b", "a"]

    def test_siblings_share_parent(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("root") as root:
            with tracer.span("s1") as s1:
                pass
            with tracer.span("s2") as s2:
                pass
        assert s1.parent_id == root.span_id
        assert s2.parent_id == root.span_id
        assert s2.span_id > s1.span_id

    def test_active_tracks_innermost(self):
        tracer = Tracer(clock=FakeClock())
        assert tracer.active() is None
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                assert tracer.active() is inner
        assert tracer.active() is None


class TestDurationsAndStatus:
    def test_durations_from_clock(self):
        tracer = Tracer(clock=FakeClock(step=0.5))
        with tracer.span("timed") as span:
            pass
        assert span.duration_s == pytest.approx(0.5)

    def test_exception_marks_status_and_unwinds_stack(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        spans = {s.name: s for s in tracer.finished()}
        assert spans["inner"].status == "error:ValueError"
        assert spans["outer"].status == "error:ValueError"
        assert tracer.active() is None  # stack fully unwound

    def test_sibling_after_exception_reparents_correctly(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("root") as root:
            with pytest.raises(RuntimeError):
                with tracer.span("failing"):
                    raise RuntimeError
            with tracer.span("recovered") as recovered:
                pass
        assert recovered.parent_id == root.span_id
        assert recovered.status == "ok"

    def test_attributes_recorded(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("fix", index=3) as span:
            span.set(label="bloc")
        finished = tracer.finished()[0]
        assert finished.attributes == {"index": 3, "label": "bloc"}


class TestThreads:
    def test_stacks_are_thread_local(self):
        tracer = Tracer()
        seen = {}

        def worker(name):
            with tracer.span(name) as span:
                seen[name] = span.parent_id

        with tracer.span("main-root"):
            threads = [
                threading.Thread(target=worker, args=(f"w{i}",))
                for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # Worker spans must be roots: the main thread's open span is not
        # their parent.
        assert all(parent is None for parent in seen.values())
        assert len(tracer.finished()) == 5

    def test_reset_clears_finished(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("x"):
            pass
        assert len(tracer) == 1
        tracer.reset()
        assert tracer.finished() == []


class TestSpanHandle:
    def test_handle_carries_identity_and_pickles(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("evaluate") as span:
            handle = span.handle()
        assert handle == SpanHandle(
            span_id=span.span_id,
            depth=span.depth,
            name="evaluate",
            trace_id=span.trace_id,
        )
        assert pickle.loads(pickle.dumps(handle)) == handle

    def test_attached_span_parents_children_under_handle(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("evaluate") as parent:
            handle = parent.handle()
        with tracer.attached(handle):
            with tracer.span("fix") as child:
                pass
        assert child.parent_id == parent.span_id
        assert child.depth == parent.depth + 1
        # The borrowed placeholder is never collected as finished.
        names = [s.name for s in tracer.finished()]
        assert names.count("evaluate") == 1

    def test_attached_accepts_span_and_none(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("root") as root:
            handle_parent = root
        with tracer.attached(handle_parent):
            with tracer.span("child") as child:
                pass
        assert child.parent_id == root.span_id
        with tracer.attached(None):
            with tracer.span("orphan") as orphan:
                pass
        assert orphan.parent_id is None

    def test_attached_unwinds_even_on_error(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("root") as root:
            pass
        with pytest.raises(RuntimeError):
            with tracer.attached(root.handle()):
                raise RuntimeError
        assert tracer.active() is None

    def test_worker_tracer_id_offset_keeps_ids_disjoint(self):
        main = Tracer(clock=FakeClock())
        worker = Tracer(clock=FakeClock(), id_offset=1 << 32)
        with main.span("a") as a:
            pass
        with worker.span("b") as b:
            pass
        assert a.span_id == 1
        assert b.span_id == (1 << 32) + 1
        assert a.span_id != b.span_id


class TestAbsorb:
    """Folding worker-process spans into the parent tracer."""

    def test_absorbed_spans_join_finished(self):
        parent = Tracer(clock=FakeClock())
        with parent.span("evaluate"):
            pass
        worker = Tracer(clock=FakeClock(), id_offset=1 << 32)
        with worker.span("fix"):
            pass
        parent.absorb(worker.finished())
        names = [s.name for s in parent.finished()]
        assert names == ["evaluate", "fix"]

    def test_absorb_preserves_worker_ids(self):
        parent = Tracer(clock=FakeClock())
        with parent.span("evaluate"):
            pass
        worker = Tracer(clock=FakeClock(), id_offset=1 << 32)
        with worker.span("fix"):
            pass
        parent.absorb(worker.finished())
        ids = [s.span_id for s in parent.finished()]
        assert len(ids) == len(set(ids))
        assert any(i >= 1 << 32 for i in ids)

    def test_absorb_empty_is_noop(self):
        tracer = Tracer(clock=FakeClock())
        tracer.absorb([])
        assert tracer.finished() == []

    def test_absorbed_spans_survive_pickle_hop(self):
        # The exact process-backend contract: spans pickle in a worker,
        # unpickle in the parent, and land parented under the handle
        # the worker attached to.
        parent = Tracer(clock=FakeClock())
        with parent.span("evaluate") as root:
            handle = root.handle()
        worker = Tracer(clock=FakeClock(), id_offset=1 << 32)
        with worker.attached(handle):
            with worker.span("fix"):
                pass
        shipped = pickle.loads(pickle.dumps(worker.finished()))
        parent.absorb(shipped)
        fix = [s for s in parent.finished() if s.name == "fix"][0]
        assert fix.parent_id == root.span_id
        assert fix.depth == root.depth + 1


class TestActiveStacks:
    def test_empty_when_no_open_spans(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("done"):
            pass
        assert tracer.active_stacks() == {}

    def test_snapshot_is_outermost_first(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                (stack,) = tracer.active_stacks().values()
        assert [s.name for s in stack] == ["outer", "inner"]

    def test_keys_include_thread_name_and_ident(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("open"):
            (key,) = tracer.active_stacks().keys()
        name, _, ident = key.rpartition("#")
        assert name == threading.current_thread().name
        assert int(ident) == threading.get_ident()

    def test_covers_concurrent_threads(self):
        tracer = Tracer()
        inside = threading.Event()
        release = threading.Event()

        def worker():
            with tracer.span("worker-open"):
                inside.set()
                release.wait(timeout=5.0)

        thread = threading.Thread(target=worker, name="stack-worker")
        thread.start()
        try:
            assert inside.wait(timeout=5.0)
            with tracer.span("main-open"):
                stacks = tracer.active_stacks()
        finally:
            release.set()
            thread.join(timeout=5.0)
        names = {
            tuple(s.name for s in stack) for stack in stacks.values()
        }
        assert ("worker-open",) in names
        assert ("main-open",) in names

    def test_snapshot_unaffected_by_later_pops(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                (stack,) = tracer.active_stacks().values()
        # The snapshot is a copy: closing the spans does not mutate it.
        assert [s.name for s in stack] == ["outer", "inner"]
