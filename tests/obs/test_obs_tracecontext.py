"""Tests for request-trace propagation: traceparent headers, trace-id
inheritance, TraceContext attachment, absorb collision handling, and
handle propagation across fork/spawn process boundaries.

The process-boundary worker lives at module level so it pickles under
both fork and spawn start methods.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.errors import ConfigurationError
from repro.obs.trace import (
    SpanHandle,
    TraceContext,
    Tracer,
    format_traceparent,
    new_trace_id,
    parse_traceparent,
)

HEX = set("0123456789abcdef")


def _is_trace_id(value: str) -> bool:
    return len(value) == 32 and set(value) <= HEX


class TestTraceparent:
    def test_roundtrip(self):
        trace_id = new_trace_id()
        header = format_traceparent(trace_id, span_id=0xABC)
        assert parse_traceparent(header) == trace_id
        assert header == f"00-{trace_id}-0000000000000abc-01"

    def test_zero_span_id_renders_all_zero_parent(self):
        trace_id = new_trace_id()
        assert format_traceparent(trace_id).split("-")[2] == "0" * 16

    def test_span_id_truncated_to_64_bits(self):
        trace_id = new_trace_id()
        header = format_traceparent(trace_id, span_id=1 << 70)
        assert header.split("-")[2] == "0" * 16

    def test_trace_id_lowercased(self):
        upper = "AB" * 16
        header = f"00-{upper}-{'1' * 16}-01"
        assert parse_traceparent(header) == upper.lower()

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "not-a-traceparent",
            "00-abc-0000000000000001-01",  # short trace id
            f"00-{'0' * 32}-{'1' * 16}-01",  # all-zero trace id
            f"ff-{'a' * 32}-{'1' * 16}-01",  # forbidden version
            f"0g-{'a' * 32}-{'1' * 16}-01",  # non-hex version
            f"00-{'a' * 32}-{'1' * 15}-01",  # short parent id
            f"00-{'z' * 32}-{'1' * 16}-01",  # non-hex trace id
        ],
    )
    def test_malformed_headers_return_none(self, header):
        assert parse_traceparent(header) is None

    def test_new_trace_ids_are_distinct_and_shaped(self):
        first, second = new_trace_id(), new_trace_id()
        assert first != second
        assert _is_trace_id(first) and _is_trace_id(second)


class TestTraceIdResolution:
    def test_root_span_mints_a_trace_id(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            assert _is_trace_id(root.trace_id)

    def test_children_inherit_the_parent_trace(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grandchild:
                    pass
        assert child.trace_id == root.trace_id
        assert grandchild.trace_id == root.trace_id

    def test_explicit_trace_id_wins_over_inheritance(self):
        tracer = Tracer()
        forced = new_trace_id()
        with tracer.span("root"):
            with tracer.span("child", trace_id=forced) as child:
                pass
        assert child.trace_id == forced

    def test_ambient_trace_seeds_root_spans(self):
        tracer = Tracer()
        ambient = new_trace_id()
        with tracer.trace(ambient):
            with tracer.span("first") as first:
                pass
            with tracer.span("second") as second:
                pass
        assert first.trace_id == ambient
        assert second.trace_id == ambient

    def test_ambient_trace_restored_on_exit(self):
        tracer = Tracer()
        outer, inner = new_trace_id(), new_trace_id()
        with tracer.trace(outer):
            with tracer.trace(inner):
                with tracer.span("inside") as inside:
                    pass
            with tracer.span("after") as after:
                pass
        with tracer.span("outside") as outside:
            pass
        assert inside.trace_id == inner
        assert after.trace_id == outer
        assert outside.trace_id not in (outer, inner)

    def test_handle_and_context_carry_the_trace(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            handle = root.handle()
            context = root.context()
        assert handle.trace_id == root.trace_id
        assert context.trace_id == root.trace_id
        assert context.parent == handle
        assert (
            parse_traceparent(context.traceparent()) == root.trace_id
        )


class TestTraceContextAttached:
    def test_handle_attachment_inherits_trace_and_position(self):
        origin = Tracer()
        with origin.span("request") as request:
            handle = request.handle()
        worker = Tracer(id_offset=1 << 32)
        with worker.attached(handle):
            with worker.span("work") as work:
                pass
        assert work.trace_id == request.trace_id
        assert work.parent_id == request.span_id
        assert work.depth == request.depth + 1

    def test_parentless_context_seeds_ambient_trace_only(self):
        tracer = Tracer()
        context = TraceContext(trace_id=new_trace_id(), parent=None)
        with tracer.attached(context):
            with tracer.span("rooted") as rooted:
                pass
        assert rooted.trace_id == context.trace_id
        assert rooted.parent_id is None

    def test_context_with_parent_attaches_the_handle(self):
        origin = Tracer()
        with origin.span("request") as request:
            context = request.context()
        worker = Tracer(id_offset=1 << 32)
        with worker.attached(context):
            with worker.span("work") as work:
                pass
        assert work.parent_id == request.span_id
        assert work.trace_id == request.trace_id

    def test_traceless_handle_picks_up_the_context_trace(self):
        # A pre-trace-context handle (trace_id="") shipped inside a
        # TraceContext still seeds the worker's spans with the trace.
        trace_id = new_trace_id()
        bare = SpanHandle(span_id=7, depth=0, name="request")
        context = TraceContext(trace_id=trace_id, parent=bare)
        worker = Tracer()
        with worker.attached(context):
            with worker.span("work") as work:
                pass
        assert work.trace_id == trace_id
        assert work.parent_id == 7


class TestAbsorbCollisions:
    def _worker_spans(self, offset, parent_handle=None, names=("w",)):
        tracer = Tracer(id_offset=offset)
        with tracer.attached(parent_handle):
            for name in names:
                with tracer.span(name):
                    pass
        return tracer.finished()

    def test_disjoint_offsets_absorb_cleanly(self):
        parent = Tracer()
        with parent.span("root") as root:
            handle = root.handle()
        spans_a = self._worker_spans(1 << 32, handle)
        spans_b = self._worker_spans(2 << 32, handle)
        parent.absorb(spans_a)
        parent.absorb(spans_b)
        assert len(parent.finished()) == 3

    def test_colliding_worker_ids_raise(self):
        parent = Tracer()
        with parent.span("root"):
            pass
        # Offset 0 collides with the parent's own id space.
        spans = self._worker_spans(0)
        with pytest.raises(ConfigurationError, match="collision"):
            parent.absorb(spans)

    def test_rejected_batch_absorbs_nothing(self):
        parent = Tracer()
        with parent.span("root"):
            pass
        clean = self._worker_spans(1 << 32)
        dirty = clean + self._worker_spans(0)
        before = len(parent.finished())
        with pytest.raises(ConfigurationError):
            parent.absorb(dirty)
        # Atomic rejection: not even the clean spans landed.
        assert len(parent.finished()) == before
        parent.absorb(clean)  # still absorbable afterwards
        assert len(parent.finished()) == before + len(clean)

    def test_intra_batch_duplicates_raise(self):
        parent = Tracer()
        spans = self._worker_spans(1 << 32)
        with pytest.raises(ConfigurationError, match="collision"):
            parent.absorb(spans + spans)

    def test_double_absorb_of_same_batch_raises(self):
        parent = Tracer()
        spans = self._worker_spans(1 << 32)
        parent.absorb(spans)
        with pytest.raises(ConfigurationError):
            parent.absorb(spans)

    def test_reset_clears_seen_ids(self):
        parent = Tracer()
        spans = self._worker_spans(1 << 32)
        parent.absorb(spans)
        parent.reset()
        parent.absorb(spans)  # no longer a collision after reset
        assert len(parent.finished()) == len(spans)


def _remote_worker(handle, offset, queue):
    """Child-process body: open one span under the shipped handle."""
    tracer = Tracer(id_offset=offset)
    with tracer.attached(handle):
        with tracer.span("remote"):
            pass
    queue.put(tracer.finished())


@pytest.mark.parametrize(
    "method",
    [
        m
        for m in ("fork", "spawn")
        if m in multiprocessing.get_all_start_methods()
    ],
)
class TestCrossProcessAttached:
    def test_trace_survives_the_process_boundary(self, method):
        context = multiprocessing.get_context(method)
        parent = Tracer()
        with parent.span("sweep") as sweep:
            handle = sweep.handle()
            queue = context.Queue()
            offset = 7 << 32
            child = context.Process(
                target=_remote_worker, args=(handle, offset, queue)
            )
            child.start()
            shipped = queue.get(timeout=30)
            child.join(timeout=30)
        assert child.exitcode == 0
        parent.absorb(shipped)
        (remote,) = [
            s for s in parent.finished() if s.name == "remote"
        ]
        assert remote.trace_id == sweep.trace_id
        assert remote.parent_id == sweep.span_id
        assert remote.depth == sweep.depth + 1
        assert remote.span_id > offset
