"""Tests for repro.obs.context: observer switching and the no-op path.

The headline guarantee is at the bottom: ``BlocLocalizer.locate`` output
is bit-identical with observability enabled vs disabled, because the
instrumentation only ever *reads* pipeline state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BlocLocalizer
from repro.obs import (
    Observability,
    STANDARD_METRICS,
    get_observer,
    install,
    observed,
    traced,
)


class TestSwitchboard:
    def test_default_observer_is_disabled(self):
        assert get_observer().enabled is False

    def test_install_and_restore(self):
        live = Observability(enabled=True)
        previous = install(live)
        try:
            assert get_observer() is live
        finally:
            install(previous)
        assert get_observer().enabled is False

    def test_observed_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with observed():
                assert get_observer().enabled is True
                raise RuntimeError
        assert get_observer().enabled is False

    def test_observed_preregisters_standard_metrics(self):
        with observed() as obs:
            for name in STANDARD_METRICS:
                assert name in obs.metrics

    def test_disabled_span_is_noop(self):
        disabled = Observability(enabled=False)
        cm = disabled.span("anything")
        with cm as span:
            assert span is None
        # The no-op context is shared and reusable.
        assert disabled.span("other") is cm
        assert len(disabled.tracer) == 0

    def test_traced_decorator(self):
        calls = []

        @traced("custom-name")
        def work(x):
            calls.append(x)
            return x * 2

        assert work(2) == 4  # disabled: no span recorded
        with observed() as obs:
            assert work(3) == 6
        names = [s.name for s in obs.tracer.finished()]
        assert names == ["custom-name"]
        assert calls == [2, 3]


class TestNoopBitIdentical:
    def test_locate_identical_with_observability_on_vs_off(
        self, observations
    ):
        localizer = BlocLocalizer()
        baseline = localizer.locate(observations)
        with observed():
            traced_result = localizer.locate(observations)
        again = localizer.locate(observations)

        for other in (traced_result, again):
            assert other.position.x == baseline.position.x
            assert other.position.y == baseline.position.y
            assert len(other.scored_peaks) == len(baseline.scored_peaks)
            for a, b in zip(other.scored_peaks, baseline.scored_peaks):
                assert a.score == b.score
                assert a.entropy == b.entropy
                assert a.distance_sum_m == b.distance_sum_m
                assert a.peak.position.x == b.peak.position.x
                assert a.peak.position.y == b.peak.position.y
            assert np.array_equal(
                other.likelihood.combined, baseline.likelihood.combined
            )

    def test_observed_locate_records_all_stage_spans(self, observations):
        with observed() as obs:
            BlocLocalizer().locate(observations)
        names = {s.name for s in obs.tracer.finished()}
        assert {
            "correct",
            "map_likelihood",
            "pick_peak",
            "find_peaks",
            "score_peaks",
            "refine",
        } <= names

    def test_observed_locate_records_pipeline_metrics(self, observations):
        with observed() as obs:
            BlocLocalizer().locate(observations)
        metrics = obs.metrics
        assert metrics.get("correction.hops_total").value == 37
        assert metrics.get("correction.hop_coverage").value == 1.0
        assert metrics.get("correction.residual_phase_rad").count == 37
        assert metrics.get("peaks.candidates").count == 1
        assert metrics.get("peaks.score_margin").count == 1
