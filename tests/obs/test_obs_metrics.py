"""Tests for repro.obs.metrics: instruments, bucket edges, registry."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("c")
        assert c.value == 0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ConfigurationError):
            Counter("c").inc(-1)


class TestGauge:
    def test_nan_until_set(self):
        g = Gauge("g")
        assert math.isnan(g.value)
        g.set(0.75)
        assert g.value == 0.75

    def test_add(self):
        g = Gauge("g")
        g.add(2)  # NaN -> 2
        g.add(-0.5)
        assert g.value == 1.5


class TestHistogramBuckets:
    def test_le_semantics_value_on_edge_lands_in_that_bucket(self):
        h = Histogram("h", buckets=[1.0, 2.0, 4.0])
        h.observe(1.0)  # exactly on the first edge -> bucket le=1
        h.observe(2.0)  # exactly on the second edge -> bucket le=2
        h.observe(1.5)  # inside -> bucket le=2
        h.observe(9.0)  # above all edges -> overflow
        assert h.bucket_counts() == [1, 2, 0, 1]

    def test_below_first_edge_lands_in_first_bucket(self):
        h = Histogram("h", buckets=[0.0, 1.0])
        h.observe(-3.0)
        assert h.bucket_counts() == [1, 0, 0]

    def test_stats(self):
        h = Histogram("h", buckets=[10.0])
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 6.0
        assert h.min == 1.0
        assert h.max == 3.0
        assert h.mean() == pytest.approx(2.0)

    def test_non_increasing_edges_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=[1.0, 1.0])
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=[2.0, 1.0])

    def test_nan_observation_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=[1.0]).observe(float("nan"))


class TestHistogramPercentiles:
    def test_empty_is_nan(self):
        assert math.isnan(Histogram("h", buckets=[1.0]).percentile(50))

    def test_single_value(self):
        h = Histogram("h", buckets=[1.0, 2.0])
        h.observe(1.5)
        # Clamped to observed min == max.
        assert h.percentile(50) == pytest.approx(1.5)
        assert h.percentile(95) == pytest.approx(1.5)

    def test_uniform_fill_interpolates(self):
        h = Histogram("h", buckets=[1.0, 2.0, 3.0, 4.0])
        for i in range(400):
            h.observe(i / 100.0)  # uniform on [0, 4)
        assert h.percentile(50) == pytest.approx(2.0, abs=0.25)
        assert h.percentile(95) == pytest.approx(3.8, abs=0.3)

    def test_monotone_in_q(self):
        h = Histogram("h", buckets=[0.5, 1.0, 2.0, 5.0])
        for v in (0.1, 0.4, 0.9, 1.5, 1.7, 3.0, 4.9, 7.0):
            h.observe(v)
        qs = [h.percentile(q) for q in (5, 25, 50, 75, 95)]
        assert qs == sorted(qs)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=[1.0]).percentile(101)


class TestRegistry:
    def test_idempotent_creation(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h", [1.0]) is reg.histogram("h", [1.0])

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError):
            reg.gauge("x")

    def test_histogram_bucket_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            reg.histogram("h", [1.0, 3.0])

    def test_snapshot_sorted_and_typed(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(2)
        reg.gauge("a").set(1.0)
        reg.histogram("c", [1.0]).observe(0.5)
        snap = reg.snapshot()
        assert [s["name"] for s in snap] == ["a", "b", "c"]
        assert [s["type"] for s in snap] == ["gauge", "counter", "histogram"]
        hist = snap[2]
        assert hist["count"] == 1
        assert hist["buckets"][-1]["le"] == "inf"

    def test_contains_and_reset(self):
        reg = MetricsRegistry()
        reg.counter("x")
        assert "x" in reg and len(reg) == 1
        reg.reset()
        assert "x" not in reg and len(reg) == 0


class TestMergeSnapshot:
    """Cross-process merges: workers ship snapshots, not instruments."""

    def test_counter_and_gauge_snapshot_fold(self):
        worker = MetricsRegistry()
        worker.counter("eval.fixes_total").inc(3)
        worker.gauge("g").set(2.5)
        main = MetricsRegistry()
        main.counter("eval.fixes_total").inc(4)
        main.merge_snapshot(worker.snapshot())
        assert main.get("eval.fixes_total").value == 7
        assert main.get("g").value == 2.5

    def test_histogram_snapshot_fold(self):
        edges = (1.0, 2.0, 4.0)
        worker = MetricsRegistry()
        worker.histogram("h", edges).observe(0.5)
        worker.histogram("h", edges).observe(3.0)
        main = MetricsRegistry()
        main.histogram("h", edges).observe(1.5)
        main.merge_snapshot(worker.snapshot())
        merged = main.get("h")
        assert merged.count == 3
        assert merged.sum == pytest.approx(5.0)
        assert merged.bucket_counts() == [1, 1, 1, 0]

    def test_histogram_snapshot_rejects_mismatched_edges(self):
        worker = MetricsRegistry()
        worker.histogram("h", (1.0, 3.0)).observe(0.5)
        main = MetricsRegistry()
        main.histogram("h", (1.0, 2.0)).observe(0.5)
        with pytest.raises(ConfigurationError):
            main.merge_snapshot(worker.snapshot())

    def test_empty_snapshot_is_noop(self):
        main = MetricsRegistry()
        main.counter("c").inc(1)
        main.merge_snapshot([])
        assert main.get("c").value == 1

    def test_nameless_item_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().merge_snapshot([{"type": "counter"}])

    def test_snapshot_round_trips_through_plain_data(self):
        # The exact contract the process backend relies on: snapshot()
        # out of one registry, merge_snapshot() into a fresh one, equal
        # snapshots on both ends.
        worker = MetricsRegistry()
        worker.counter("eval.fixes_total").inc(5)
        worker.histogram("eval.fix_latency_s").observe(0.01)
        main = MetricsRegistry()
        main.merge_snapshot(worker.snapshot())
        assert main.snapshot() == worker.snapshot()


class TestMerge:
    def test_counter_merge_adds(self):
        a, b = Counter("c"), Counter("c")
        a.inc(3)
        b.inc(4)
        a.merge(b)
        assert a.value == 7

    def test_gauge_merge_last_write_wins(self):
        a, b = Gauge("g"), Gauge("g")
        a.set(1.0)
        b.set(2.5)
        a.merge(b)
        assert a.value == 2.5

    def test_gauge_merge_skips_nan(self):
        a, b = Gauge("g"), Gauge("g")
        a.set(1.0)
        a.merge(b)  # b never set: stays 1.0
        assert a.value == 1.0

    def test_histogram_merge_combines_everything(self):
        edges = (1, 2, 4)
        a, b = Histogram("h", edges), Histogram("h", edges)
        a.observe(0.5)
        a.observe(3.0)
        b.observe(1.5)
        b.observe(10.0)
        a.merge(b)
        assert a.count == 4
        assert a.sum == pytest.approx(15.0)
        assert a.min == 0.5
        assert a.max == 10.0
        assert a.bucket_counts() == [1, 1, 1, 1]

    def test_histogram_merge_rejects_mismatched_edges(self):
        a = Histogram("h", (1, 2))
        b = Histogram("h", (1, 3))
        with pytest.raises(ConfigurationError):
            a.merge(b)

    def test_empty_histogram_merge_is_noop(self):
        a = Histogram("h", (1, 2))
        a.observe(0.5)
        a.merge(Histogram("h", (1, 2)))
        assert a.count == 1
        assert a.min == 0.5

    def test_registry_merge_creates_and_combines(self):
        main, worker = MetricsRegistry(), MetricsRegistry()
        main.counter("shared").inc(1)
        worker.counter("shared").inc(2)
        worker.counter("worker_only").inc(5)
        worker.gauge("g").set(3.0)
        worker.histogram("h", (1, 2)).observe(1.5)
        main.merge(worker)
        assert main.counter("shared").value == 3
        assert main.counter("worker_only").value == 5
        assert main.gauge("g").value == 3.0
        assert main.histogram("h", (1, 2)).count == 1

    def test_registry_merge_kind_conflict_raises(self):
        main, worker = MetricsRegistry(), MetricsRegistry()
        main.counter("x")
        worker.gauge("x").set(1.0)
        with pytest.raises(ConfigurationError):
            main.merge(worker)

    @pytest.mark.parametrize(
        "make_main, make_worker",
        [
            (lambda r: r.counter("x"), lambda r: r.histogram("x", (1.0,))),
            (lambda r: r.histogram("x", (1.0,)), lambda r: r.counter("x")),
            (lambda r: r.gauge("x"), lambda r: r.histogram("x", (1.0,))),
            (lambda r: r.histogram("x", (1.0,)), lambda r: r.gauge("x")),
            (lambda r: r.gauge("x"), lambda r: r.counter("x")),
        ],
    )
    def test_registry_merge_every_kind_conflict_raises(
        self, make_main, make_worker
    ):
        main, worker = MetricsRegistry(), MetricsRegistry()
        make_main(main)
        make_worker(worker)
        with pytest.raises(ConfigurationError):
            main.merge(worker)

    def test_merge_of_empty_registries_is_noop(self):
        main = MetricsRegistry()
        assert main.merge(MetricsRegistry()) is main
        assert len(main) == 0

    def test_merge_empty_into_populated_preserves_values(self):
        main = MetricsRegistry()
        main.counter("c").inc(2)
        main.histogram("h", (1, 2)).observe(0.5)
        main.merge(MetricsRegistry())
        assert main.counter("c").value == 2
        assert main.histogram("h", (1, 2)).count == 1

    def test_registry_merge_mismatched_histogram_edges_raises(self):
        main, worker = MetricsRegistry(), MetricsRegistry()
        main.histogram("h", (1.0, 2.0))
        worker.histogram("h", (1.0, 3.0)).observe(0.5)
        with pytest.raises(ConfigurationError):
            main.merge(worker)

    def test_merge_after_snapshot_reflects_new_observations(self):
        main, worker = MetricsRegistry(), MetricsRegistry()
        main.counter("c").inc(1)
        before = {s["name"]: s for s in main.snapshot()}
        assert before["c"]["value"] == 1
        worker.counter("c").inc(4)
        worker.histogram("late", (1,)).observe(0.5)
        main.merge(worker)
        after = {s["name"]: s for s in main.snapshot()}
        assert after["c"]["value"] == 5
        assert after["late"]["count"] == 1
        # The earlier snapshot is plain data: unaffected by the merge.
        assert before["c"]["value"] == 1

    def test_merge_same_worker_twice_double_counts(self):
        # Callers must merge each worker registry exactly once; the
        # registry itself does not dedupe.
        main, worker = MetricsRegistry(), MetricsRegistry()
        worker.counter("c").inc(3)
        main.merge(worker).merge(worker)
        assert main.counter("c").value == 6
