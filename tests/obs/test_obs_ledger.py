"""Tests for repro.obs.ledger: records, ledger IO, diffing."""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import ConfigurationError
from repro.obs import Observability
from repro.obs.ledger import (
    RunLedger,
    RunRecord,
    build_run_record,
    diff_records,
    fingerprint_of,
    null_result_keys,
    render_diff,
    render_report,
    render_runs,
    scalar_view,
    span_quantiles,
)
from repro.obs.trace import Span


def make_span(name, start, end, span_id=1):
    return Span(
        name=name,
        span_id=span_id,
        parent_id=None,
        depth=0,
        start_s=start,
        end_s=end,
        status="ok",
    )


class TestFingerprint:
    def test_key_order_does_not_matter(self):
        assert fingerprint_of({"a": 1, "b": 2}) == fingerprint_of(
            {"b": 2, "a": 1}
        )

    def test_different_values_differ(self):
        assert fingerprint_of({"a": 1}) != fingerprint_of({"a": 2})

    def test_nan_is_canonicalised_not_fatal(self):
        # _json_safe maps NaN to None before hashing.
        assert fingerprint_of({"x": float("nan")}) == fingerprint_of(
            {"x": None}
        )


class TestSpanQuantiles:
    def test_quantiles_per_name(self):
        spans = [
            make_span("fix", 0.0, 1.0),
            make_span("fix", 0.0, 3.0),
            make_span("correct", 0.0, 0.5),
        ]
        out = span_quantiles(spans)
        assert out["fix"]["count"] == 2
        assert out["fix"]["total_s"] == pytest.approx(4.0)
        assert out["fix"]["p50_s"] == pytest.approx(2.0)
        assert out["correct"]["p99_s"] == pytest.approx(0.5)

    def test_open_spans_excluded(self):
        open_span = make_span("fix", 0.0, float("nan"))
        assert span_quantiles([open_span]) == {}


class TestBuildRunRecord:
    def test_embeds_observer_data_when_enabled(self):
        obs = Observability(enabled=True).preregister()
        with obs.span("fix"):
            obs.metrics.counter("eval.fixes_total").inc()
        record = build_run_record(
            "evaluate",
            obs,
            label="unit",
            config={"seed": 7},
            workers=2,
            results={"median_m": 0.5},
            artifacts=["trace.ndjson"],
        )
        assert record.command == "evaluate"
        assert record.workers == 2
        assert record.fingerprint == fingerprint_of({"seed": 7})
        assert record.host["cpu_count"] >= 1
        assert "fix" in record.spans
        assert any(
            m.get("name") == "eval.fixes_total" for m in record.metrics
        )
        payload = record.to_dict()
        assert payload["type"] == "run"
        json.dumps(payload, allow_nan=False)

    def test_disabled_observer_embeds_nothing(self):
        record = build_run_record("bench", Observability(enabled=False))
        assert record.metrics == []
        assert record.spans == {}
        assert record.fingerprint == ""


class TestRunLedger:
    def test_append_and_load_roundtrip(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.ndjson")
        written = ledger.append(build_run_record("evaluate"))
        assert ledger.load() == [written]

    def test_non_finite_values_round_trip_as_strict_json(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.ndjson")
        record = build_run_record(
            "evaluate",
            results={
                "nan": float("nan"),
                "pos": float("inf"),
                "neg": float("-inf"),
            },
        )
        ledger.append(record)
        for line in ledger.path.read_text().splitlines():
            json.loads(line)  # strict: bare NaN/Infinity would fail
        loaded = ledger.load()[0]
        assert loaded["results"] == {
            "nan": None,
            "pos": "Infinity",
            "neg": "-Infinity",
        }

    def test_load_missing_file_is_empty(self, tmp_path):
        assert RunLedger(tmp_path / "absent.ndjson").load() == []

    def test_corrupt_line_raises(self, tmp_path):
        path = tmp_path / "runs.ndjson"
        path.write_text('{"ok": 1}\nnot json\n', encoding="utf-8")
        with pytest.raises(ValueError, match="corrupt ledger"):
            RunLedger(path).load()

    def test_append_creates_parent_dirs(self, tmp_path):
        ledger = RunLedger(tmp_path / "deep" / "runs.ndjson")
        ledger.append({"run_id": "abc"})
        assert ledger.path.exists()

    def test_concurrent_appends_keep_lines_whole(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.ndjson")

        def writer(i):
            for j in range(20):
                ledger.append({"run_id": f"w{i}-{j}", "payload": "x" * 64})

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        records = ledger.load()  # raises on any torn line
        assert len(records) == 80
        assert len({r["run_id"] for r in records}) == 80

    def test_resolve_by_index_and_prefix(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.ndjson")
        ledger.append({"run_id": "aaa111"})
        ledger.append({"run_id": "bbb222"})
        assert ledger.resolve("-1")["run_id"] == "bbb222"
        assert ledger.resolve("aaa")["run_id"] == "aaa111"
        with pytest.raises(ConfigurationError, match="no ledger record"):
            ledger.resolve("zzz")
        with pytest.raises(ConfigurationError, match="out of range"):
            ledger.resolve("-5")

    def test_resolve_ambiguous_prefix(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.ndjson")
        ledger.append({"run_id": "abc1"})
        ledger.append({"run_id": "abc2"})
        with pytest.raises(ConfigurationError, match="ambiguous"):
            ledger.resolve("abc")

    def test_resolve_empty_ledger(self, tmp_path):
        with pytest.raises(ConfigurationError, match="empty or missing"):
            RunLedger(tmp_path / "runs.ndjson").resolve("-1")


def record_with(metrics=(), spans=None, results=None):
    return {
        "run_id": "r1",
        "command": "evaluate",
        "timestamp": "t",
        "metrics": list(metrics),
        "spans": spans or {},
        "results": results or {},
    }


class TestScalarView:
    def test_namespaced_flattening(self):
        record = record_with(
            metrics=[
                {"type": "counter", "name": "eval.fixes_total", "value": 9},
                {
                    "type": "histogram",
                    "name": "eval.fix_latency_s",
                    "count": 9,
                    "mean": 0.1,
                    "p50": 0.05,
                    "p95": 0.2,
                },
            ],
            spans={"fix": {"count": 9, "p50_s": 0.05, "p95_s": 0.2,
                           "p99_s": 0.3}},
            results={"bloc.median_m": 0.5, "note": "text ignored"},
        )
        view = scalar_view(record)
        assert view["metric:eval.fixes_total"] == 9.0
        assert view["metric:eval.fix_latency_s.p95"] == 0.2
        assert view["span:fix.p99_s"] == 0.3
        assert view["result:bloc.median_m"] == 0.5
        assert "result:note" not in view

    def test_bools_and_nulls_dropped(self):
        record = record_with(
            results={"flag": True, "missing": None, "x": 1}
        )
        view = scalar_view(record)
        assert "result:flag" not in view
        assert "result:missing" not in view
        assert view["result:x"] == 1.0


class TestDiffAndRender:
    def test_diff_rows(self):
        a = record_with(results={"x": 2.0, "only_a": 1.0})
        b = record_with(results={"x": 3.0, "only_b": 4.0})
        rows = {r["key"]: r for r in diff_records(a, b)}
        assert rows["result:x"]["delta"] == pytest.approx(1.0)
        assert rows["result:x"]["pct"] == pytest.approx(0.5)
        assert rows["result:only_a"]["b"] is None
        assert rows["result:only_a"]["delta"] is None
        assert rows["result:only_b"]["a"] is None

    def test_zero_baseline_has_no_pct(self):
        a = record_with(results={"x": 0.0})
        b = record_with(results={"x": 5.0})
        (row,) = diff_records(a, b)
        assert row["pct"] is None

    def test_render_diff_min_pct_filters(self):
        a = record_with(results={"big": 1.0, "small": 1.0})
        b = record_with(results={"big": 2.0, "small": 1.001})
        text = render_diff(a, b, min_pct=0.05)
        assert "result:big" in text
        assert "result:small" not in text

    def test_render_runs_and_report(self):
        a = record_with(results={"x": 1.0})
        b = record_with(results={"x": 2.0})
        b = dict(b, run_id="r2")
        assert "r1" in render_runs([a, b])
        report = render_report([a, b])
        assert "== runs ==" in report
        assert "latest diff" in report
        assert "result:x" in report

    def test_report_needs_two_records(self):
        text = render_report([record_with()])
        assert "need >= 2 ledger records" in text


class TestNullSpeedupRendering:
    """A 1-cpu bench records speedups as null; the report says why."""

    def test_null_result_keys_labelled(self):
        record = record_with(
            results={
                "evaluate.speedup_parallel_vs_serial": None,
                "batched.speedup_batched_vs_serial": None,
                "other_thing": None,
                "evaluate.serial_fixes_per_s": 40.0,
            }
        )
        keys = null_result_keys(record)
        assert (
            keys["result:evaluate.speedup_parallel_vs_serial"]
            == "n/a (1 cpu)"
        )
        assert (
            keys["result:batched.speedup_batched_vs_serial"]
            == "n/a (1 cpu)"
        )
        assert keys["result:other_thing"] == "n/a"
        assert "result:evaluate.serial_fixes_per_s" not in keys

    def test_report_renders_na_for_null_speedup(self):
        a = record_with(
            results={
                "evaluate.speedup_parallel_vs_serial": None,
                "x": 1.0,
            }
        )
        b = dict(
            record_with(
                results={
                    "evaluate.speedup_parallel_vs_serial": None,
                    "x": 2.0,
                }
            ),
            run_id="r2",
        )
        report = render_report([a, b])
        assert "result:evaluate.speedup_parallel_vs_serial" in report
        assert "n/a (1 cpu)" in report

    def test_null_on_one_side_renders_na_against_number(self):
        a = record_with(
            results={"evaluate.speedup_parallel_vs_serial": 3.4}
        )
        b = dict(
            record_with(
                results={"evaluate.speedup_parallel_vs_serial": None}
            ),
            run_id="r2",
        )
        text = render_diff(a, b)
        assert "3.4" in text
        assert "n/a (1 cpu)" in text
