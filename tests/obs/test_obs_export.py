"""Tests for repro.obs.export: NDJSON schema and summary tables."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs.export import _json_safe
from repro.obs import (
    Observability,
    export_ndjson,
    load_ndjson,
    metrics_summary,
    span_summary,
    summary,
)


@pytest.fixture()
def observer():
    obs = Observability(enabled=True)
    with obs.span("root"):
        with obs.span("child"):
            pass
    obs.metrics.counter("ble.crc_failures").inc(3)
    obs.metrics.gauge("coverage").set(0.9)
    hist = obs.metrics.histogram("latency", [0.1, 1.0])
    hist.observe(0.05)
    hist.observe(0.5)
    return obs


class TestNdjson:
    def test_every_line_is_strict_json(self, observer, tmp_path):
        path = tmp_path / "run.ndjson"
        lines_written = export_ndjson(path, observer, command="test")
        raw = path.read_text().splitlines()
        assert len(raw) == lines_written == 1 + 2 + 3
        for line in raw:
            json.loads(line)  # raises on NaN/Inf or malformed output

    def test_meta_line_first(self, observer, tmp_path):
        path = tmp_path / "run.ndjson"
        export_ndjson(path, observer, command="test")
        records = load_ndjson(path)
        meta = records[0]
        assert meta["type"] == "meta"
        assert meta["format"] == "repro-obs"
        assert meta["version"] == 1
        assert meta["num_spans"] == 2
        assert meta["num_metrics"] == 3
        assert meta["command"] == "test"

    def test_span_schema(self, observer, tmp_path):
        path = tmp_path / "run.ndjson"
        export_ndjson(path, observer)
        spans = [r for r in load_ndjson(path) if r["type"] == "span"]
        child, root = spans  # completion order
        for record in spans:
            for key in (
                "name", "span_id", "parent_id", "depth",
                "start_s", "duration_s", "status", "thread", "attributes",
            ):
                assert key in record
        assert child["name"] == "child"
        assert child["parent_id"] == root["span_id"]
        assert root["parent_id"] is None
        assert root["status"] == "ok"
        assert root["duration_s"] >= child["duration_s"] >= 0

    def test_metric_lines_match_snapshot(self, observer, tmp_path):
        path = tmp_path / "run.ndjson"
        export_ndjson(path, observer)
        records = load_ndjson(path)
        by_name = {
            r["name"]: r for r in records if r["type"] != "span" and "name" in r
        }
        assert by_name["ble.crc_failures"]["value"] == 3
        assert by_name["coverage"]["value"] == 0.9
        hist = by_name["latency"]
        assert hist["count"] == 2
        assert [b["le"] for b in hist["buckets"]] == [0.1, 1.0, "inf"]
        assert [b["count"] for b in hist["buckets"]] == [1, 1, 0]
        assert hist["p50"] is not None and hist["p95"] is not None

    def test_span_with_non_finite_attributes_round_trips(self, tmp_path):
        obs = Observability(enabled=True)
        with obs.span("weird") as span:
            span.set(snr_db=float("inf"), offset=float("nan"),
                     floor_db=float("-inf"))
        path = tmp_path / "run.ndjson"
        export_ndjson(path, obs)
        for line in path.read_text().splitlines():
            json.loads(line)  # strict: would reject bare NaN/Infinity
        (span_record,) = [
            r for r in load_ndjson(path) if r["type"] == "span"
        ]
        assert span_record["attributes"] == {
            "snr_db": "Infinity",
            "offset": None,
            "floor_db": "-Infinity",
        }

    def test_load_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.ndjson"
        bad.write_text("not json\n")
        with pytest.raises(ValueError):
            load_ndjson(bad)
        empty = tmp_path / "empty.ndjson"
        empty.write_text("")
        with pytest.raises(ValueError):
            load_ndjson(empty)


class TestJsonSafe:
    """Numpy-aware sanitisation behind every NDJSON/bundle-meta line."""

    def test_numpy_bool_becomes_python_bool(self):
        out = _json_safe(np.bool_(True))
        assert out is True and type(out) is bool

    def test_numpy_scalars_unwrap(self):
        assert _json_safe(np.int32(7)) == 7
        assert type(_json_safe(np.int64(7))) is int
        assert _json_safe(np.float64(1.5)) == 1.5
        assert type(_json_safe(np.float32(1.5))) is float

    def test_nan_becomes_none(self):
        assert _json_safe(float("nan")) is None
        assert _json_safe(np.float64("nan")) is None

    def test_infinities_keep_their_sign_as_strings(self):
        assert _json_safe(float("inf")) == "Infinity"
        assert _json_safe(np.float64("inf")) == "Infinity"
        assert _json_safe(float("-inf")) == "-Infinity"
        assert _json_safe(-np.inf) == "-Infinity"

    def test_non_finite_values_survive_strict_json(self):
        record = _json_safe(
            {
                "snr_db": np.inf,
                "floor_db": -np.inf,
                "coverage": float("nan"),
                "bands": np.array([1.0, np.inf, np.nan]),
            }
        )
        text = json.dumps(record, allow_nan=False)  # must not raise
        assert json.loads(text) == {
            "snr_db": "Infinity",
            "floor_db": "-Infinity",
            "coverage": None,
            "bands": [1.0, "Infinity", None],
        }

    def test_zero_d_array_unwraps_to_scalar(self):
        assert _json_safe(np.array(3.5)) == 3.5
        assert _json_safe(np.array(np.nan)) is None

    def test_nested_arrays_become_lists(self):
        out = _json_safe({"m": np.array([[1.0, np.nan], [2.0, 3.0]])})
        assert out == {"m": [[1.0, None], [2.0, 3.0]]}

    def test_complex_becomes_real_imag_pair(self):
        assert _json_safe(np.complex128(1 + 2j)) == {"real": 1.0, "imag": 2.0}
        assert _json_safe(complex("inf")) == {"real": "Infinity", "imag": 0.0}

    def test_containers_and_fallback(self):
        assert _json_safe((1, 2)) == [1, 2]
        assert _json_safe({np.int64(3): "v"}) == {"3": "v"}
        assert isinstance(_json_safe(object()), str)

    def test_result_passes_strict_json(self):
        payload = {
            "flags": np.array([True, False]),
            "snr": np.array([1.0, np.inf]),
            "gain": np.complex64(0.5 - 0.5j),
        }
        text = json.dumps(_json_safe(payload), allow_nan=False)
        assert json.loads(text)["snr"] == [1.0, "Infinity"]


class TestSummaries:
    def test_span_summary_groups_by_name(self, observer):
        table = span_summary(observer.tracer.finished())
        assert "root" in table and "child" in table
        assert "p95 ms" in table

    def test_metrics_summary_lists_every_instrument(self, observer):
        table = metrics_summary(observer.metrics)
        for name in ("ble.crc_failures", "coverage", "latency"):
            assert name in table

    def test_combined_summary(self, observer):
        text = summary(observer)
        assert "== span timings ==" in text
        assert "== metrics ==" in text

    def test_empty_observer_summaries(self):
        obs = Observability(enabled=True)
        assert "no spans" in span_summary(obs.tracer.finished())
        assert "no metrics" in metrics_summary(obs.metrics)
