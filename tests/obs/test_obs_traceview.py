"""Tests for trace reconstruction from NDJSON exports
(resolve_trace_id / trace_spans / render_trace)."""

from __future__ import annotations

import pytest

from repro.obs.context import Observability
from repro.obs.export import (
    export_ndjson,
    load_ndjson,
    render_trace,
    resolve_trace_id,
    trace_spans,
)
from repro.obs.trace import new_trace_id


@pytest.fixture
def export_records(tmp_path):
    """An export with one request trace linked to a batch subtree."""
    obs = Observability(enabled=True)
    trace_id = new_trace_id()
    other_id = new_trace_id()
    with obs.span("service.locate", trace_id=trace_id) as request:
        with obs.span("service.batch_wait"):
            pass
    # The batch runs on its own trace, linked back via the attribute.
    with obs.span(
        "service.batch", member_trace_ids=[trace_id, other_id]
    ) as batch:
        with obs.span("service.provider_chain"):
            with obs.span("correct"):
                pass
    # An unrelated trace that must never be grafted in.
    with obs.span("service.locate", trace_id=new_trace_id()):
        pass
    path = tmp_path / "export.ndjson"
    export_ndjson(path, obs)
    return load_ndjson(path), trace_id, batch.trace_id


class TestResolveTraceId:
    def test_exact_match(self, export_records):
        records, trace_id, _ = export_records
        assert resolve_trace_id(records, trace_id) == trace_id

    def test_unique_prefix_resolves(self, export_records):
        records, trace_id, _ = export_records
        assert resolve_trace_id(records, trace_id[:12]) == trace_id

    def test_unknown_id_raises(self, export_records):
        records, _, _ = export_records
        with pytest.raises(ValueError, match="no span"):
            resolve_trace_id(records, "f" * 32)

    def test_ambiguous_prefix_raises(self, export_records):
        records, _, _ = export_records
        with pytest.raises(ValueError, match="ambiguous"):
            resolve_trace_id(records, "")


class TestTraceSpans:
    def test_own_spans_selected(self, export_records):
        records, trace_id, _ = export_records
        names = {
            r["name"] for r in trace_spans(records, trace_id)
        }
        assert "service.locate" in names
        assert "service.batch_wait" in names

    def test_linked_batch_subtree_grafted(self, export_records):
        records, trace_id, batch_trace = export_records
        selected = trace_spans(records, trace_id)
        names = {r["name"] for r in selected}
        # The batch and its whole subtree ride in via the link...
        assert {"service.batch", "service.provider_chain", "correct"} <= names
        # ...even though they live on a different trace.
        batch = [r for r in selected if r["name"] == "service.batch"][0]
        assert batch["trace_id"] == batch_trace
        assert batch["trace_id"] != trace_id

    def test_unrelated_traces_excluded(self, export_records):
        records, trace_id, _ = export_records
        selected = trace_spans(records, trace_id)
        locates = [
            r for r in selected if r["name"] == "service.locate"
        ]
        assert len(locates) == 1
        assert locates[0]["trace_id"] == trace_id

    def test_unknown_trace_selects_nothing(self, export_records):
        records, _, _ = export_records
        assert trace_spans(records, "f" * 32) == []


class TestRenderTrace:
    def test_header_counts_spans(self, export_records):
        records, trace_id, _ = export_records
        text = render_trace(records, trace_id)
        assert text.startswith(f"trace {trace_id}:")
        assert "5 spans" in text

    def test_tree_shows_names_and_link_marker(self, export_records):
        records, trace_id, batch_trace = export_records
        text = render_trace(records, trace_id)
        for name in (
            "service.locate",
            "service.batch_wait",
            "service.batch",
            "correct",
        ):
            assert name in text
        assert f"linked trace {batch_trace[:12]}" in text

    def test_empty_trace_renders_placeholder(self, export_records):
        records, _, _ = export_records
        text = render_trace(records, "f" * 32)
        assert "no spans" in text
