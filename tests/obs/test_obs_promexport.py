"""Tests for the OpenMetrics exposition: rendering, parsing, exemplars."""

from __future__ import annotations

import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.promexport import (
    OPENMETRICS_CONTENT_TYPE,
    exemplar_trace_ids,
    metric_name,
    parse_exposition,
    render_openmetrics,
)


@pytest.fixture
def registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("service.requests_total").inc(3)
    registry.gauge("service.queue_depth").set(2.0)
    histogram = registry.histogram(
        "service.request_latency_s", buckets=(0.1, 0.5, 1.0)
    )
    histogram.observe(0.05, trace_id="aa" * 16)
    histogram.observe(0.3, trace_id="bb" * 16)
    histogram.observe(0.3)
    histogram.observe(5.0)
    return registry


class TestMetricName:
    def test_dots_become_underscores(self):
        assert (
            metric_name("service.request_latency_s")
            == "service_request_latency_s"
        )

    def test_leading_digit_guarded(self):
        assert metric_name("2fast")[0] == "_"

    def test_arbitrary_symbols_sanitised(self):
        assert metric_name("a b/c-d") == "a_b_c_d"


class TestRender:
    def test_terminates_with_eof(self, registry):
        text = render_openmetrics(registry)
        assert text.endswith("# EOF\n")

    def test_counter_gets_total_suffix(self, registry):
        text = render_openmetrics(registry)
        assert "service_requests_total 3" in text
        # The _total suffix is not doubled for *_total metric names.
        assert "service_requests_total_total" not in text

    def test_nan_gauges_are_skipped(self):
        registry = MetricsRegistry()
        registry.gauge("service.empty").set(float("nan"))
        registry.gauge("service.real").set(1.5)
        text = render_openmetrics(registry)
        assert "service_empty" not in text
        assert "service_real 1.5" in text

    def test_histogram_buckets_are_cumulative(self, registry):
        families = parse_exposition(render_openmetrics(registry))
        family = families["service_request_latency_s"]
        buckets = {
            s.labels["le"]: s.value
            for s in family.samples
            if s.name.endswith("_bucket")
        }
        assert buckets["0.1"] == 1
        assert buckets["0.5"] == 3
        assert buckets["1"] == 3
        assert buckets["+Inf"] == 4
        count = [
            s for s in family.samples if s.name.endswith("_count")
        ][0]
        assert count.value == 4

    def test_histogram_sum_matches_observations(self, registry):
        families = parse_exposition(render_openmetrics(registry))
        family = families["service_request_latency_s"]
        (sample,) = [
            s for s in family.samples if s.name.endswith("_sum")
        ]
        assert sample.value == pytest.approx(0.05 + 0.3 + 0.3 + 5.0)

    def test_content_type_names_openmetrics(self):
        assert "openmetrics-text" in OPENMETRICS_CONTENT_TYPE


class TestExemplars:
    def test_buckets_carry_exemplar_trace_ids(self, registry):
        text = render_openmetrics(registry)
        assert sorted(exemplar_trace_ids(text)) == [
            "aa" * 16,
            "bb" * 16,
        ]

    def test_exemplar_value_and_bucket_alignment(self, registry):
        families = parse_exposition(render_openmetrics(registry))
        family = families["service_request_latency_s"]
        by_le = {
            s.labels["le"]: s
            for s in family.samples
            if s.name.endswith("_bucket")
        }
        exemplar = by_le["0.1"].exemplar
        assert exemplar is not None
        assert exemplar["labels"]["trace_id"] == "aa" * 16
        assert exemplar["value"] == pytest.approx(0.05)

    def test_traceless_observation_leaves_no_exemplar(self, registry):
        families = parse_exposition(render_openmetrics(registry))
        family = families["service_request_latency_s"]
        by_le = {
            s.labels["le"]: s
            for s in family.samples
            if s.name.endswith("_bucket")
        }
        # 5.0 landed in +Inf without a trace_id: no exemplar there.
        assert by_le["+Inf"].exemplar is None

    def test_no_exemplars_means_empty_id_list(self):
        registry = MetricsRegistry()
        registry.counter("service.requests_total").inc()
        assert exemplar_trace_ids(render_openmetrics(registry)) == []


class TestParse:
    def test_roundtrip_family_types(self, registry):
        families = parse_exposition(render_openmetrics(registry))
        assert families["service_requests"].type == "counter"
        assert families["service_queue_depth"].type == "gauge"
        assert (
            families["service_request_latency_s"].type == "histogram"
        )

    def test_missing_eof_raises(self, registry):
        text = render_openmetrics(registry).replace("# EOF\n", "")
        with pytest.raises(ValueError, match="EOF"):
            parse_exposition(text)

    def test_content_after_eof_raises(self, registry):
        text = render_openmetrics(registry) + "stray 1\n"
        with pytest.raises(ValueError):
            parse_exposition(text)

    def test_sample_before_type_raises(self):
        with pytest.raises(ValueError):
            parse_exposition("orphan_sample 1\n# EOF\n")

    def test_malformed_line_raises(self, registry):
        text = render_openmetrics(registry)
        broken = text.replace("# EOF", "!! not a line\n# EOF", 1)
        with pytest.raises(ValueError):
            parse_exposition(broken)

    def test_inf_values_parse(self):
        text = (
            "# TYPE x gauge\n"
            "x +Inf\n"
            "# EOF\n"
        )
        families = parse_exposition(text)
        assert math.isinf(families["x"].samples[0].value)
