"""Tests for repro.obs.prof: sampling, report shape, exports."""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import ConfigurationError
from repro.obs.export import (
    export_folded,
    export_speedscope,
    folded_stacks,
    speedscope_document,
)
from repro.obs.prof import IDLE_STACK, ProfileReport, SamplingProfiler
from repro.obs.trace import Tracer


class FakeClock:
    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def sampled(tracer, samples):
    """Drive ``sample_once`` by hand ``samples`` times; return report."""
    profiler = SamplingProfiler(tracer, interval_s=0.01, clock=FakeClock())
    for _ in range(samples):
        profiler.sample_once()
    return profiler.report


class TestSampling:
    def test_invalid_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            SamplingProfiler(Tracer(), interval_s=0.0)

    def test_idle_ticks_count_against_idle_stack(self):
        report = sampled(Tracer(), samples=3)
        assert report.ticks == 3
        assert report.samples_idle == 3
        assert report.samples_total == 0

    def test_samples_attribute_to_open_stack(self):
        tracer = Tracer(clock=FakeClock())
        profiler = SamplingProfiler(
            tracer, interval_s=0.01, clock=FakeClock()
        )
        with tracer.span("outer"):
            with tracer.span("inner"):
                profiler.sample_once()
                profiler.sample_once()
            profiler.sample_once()
        report = profiler.report
        assert report.stacks[("outer", "inner")] == 2
        assert report.stacks[("outer",)] == 1
        assert report.samples_total == 3
        assert report.samples_idle == 0

    def test_samples_cover_every_thread(self):
        tracer = Tracer()
        profiler = SamplingProfiler(
            tracer, interval_s=0.01, clock=FakeClock()
        )
        inside = threading.Event()
        release = threading.Event()

        def worker():
            with tracer.span("worker-span"):
                inside.set()
                release.wait(timeout=5.0)

        thread = threading.Thread(target=worker)
        thread.start()
        try:
            assert inside.wait(timeout=5.0)
            with tracer.span("main-span"):
                profiler.sample_once()
        finally:
            release.set()
            thread.join(timeout=5.0)
        stacks = profiler.report.stacks
        assert stacks[("worker-span",)] == 1
        assert stacks[("main-span",)] == 1
        # One tick, two threads: two samples, both non-idle.
        assert profiler.report.ticks == 1
        assert profiler.report.samples_total == 2

    def test_background_thread_start_stop(self):
        tracer = Tracer()
        profiler = SamplingProfiler(tracer, interval_s=0.001)
        with tracer.span("busy"):
            with profiler:
                # Wait until the sampler demonstrably ran.
                for _ in range(1000):
                    if profiler.report.ticks >= 3:
                        break
                    threading.Event().wait(0.002)
        report = profiler.stop()  # idempotent second stop
        assert report.ticks >= 3
        assert ("busy",) in report.stacks
        assert report.duration_s >= 0.0

    def test_double_start_rejected(self):
        profiler = SamplingProfiler(Tracer(), interval_s=0.001)
        profiler.start()
        try:
            with pytest.raises(ConfigurationError):
                profiler.start()
        finally:
            profiler.stop()


class TestReport:
    def test_snapshot_shape_and_ranking(self):
        tracer = Tracer(clock=FakeClock())
        profiler = SamplingProfiler(
            tracer, interval_s=0.01, clock=FakeClock()
        )
        with tracer.span("a"):
            profiler.sample_once()
            with tracer.span("b"):
                profiler.sample_once()
                profiler.sample_once()
        snap = profiler.report.snapshot(top=1)
        assert snap["interval_s"] == pytest.approx(0.01)
        assert snap["ticks"] == 3
        assert snap["samples"] == 3
        assert snap["idle"] == 0
        assert snap["top_stacks"] == [{"stack": "a;b", "count": 2}]
        # The snapshot is ledger-bound: strict JSON must accept it.
        json.dumps(snap, allow_nan=False)

    def test_sample_cost_accumulates(self):
        report = sampled(Tracer(), samples=2)
        assert report.sample_cost_s > 0.0


class TestExports:
    def _report(self):
        tracer = Tracer(clock=FakeClock())
        profiler = SamplingProfiler(
            tracer, interval_s=0.01, clock=FakeClock()
        )
        with tracer.span("root"):
            with tracer.span("leaf"):
                profiler.sample_once()
                profiler.sample_once()
            profiler.sample_once()
        profiler.sample_once()  # idle tick after the spans closed
        return profiler.report

    def test_folded_stacks_format(self):
        lines = folded_stacks(self._report()).splitlines()
        assert lines[0] == "root;leaf 2"
        assert "root 1" in lines
        assert f"{IDLE_STACK[0]} 1" in lines

    def test_export_folded_roundtrip(self, tmp_path):
        path = tmp_path / "out.folded"
        export_folded(path, self._report())
        text = path.read_text(encoding="utf-8")
        counts = {}
        for line in text.strip().splitlines():
            stack, _, count = line.rpartition(" ")
            counts[stack] = int(count)
        assert counts["root;leaf"] == 2

    def test_speedscope_document_is_valid(self):
        doc = speedscope_document(self._report(), name="unit")
        assert doc["$schema"].startswith("https://www.speedscope.app/")
        frames = [f["name"] for f in doc["shared"]["frames"]]
        profile = doc["profiles"][0]
        assert profile["type"] == "sampled"
        assert len(profile["samples"]) == len(profile["weights"])
        # Samples index into the shared frame table, root first.
        for sample in profile["samples"]:
            assert all(0 <= idx < len(frames) for idx in sample)
        named = [
            [frames[idx] for idx in sample]
            for sample in profile["samples"]
        ]
        assert ["root", "leaf"] in named
        json.dumps(doc, allow_nan=False)

    def test_export_speedscope_writes_strict_json(self, tmp_path):
        path = tmp_path / "out.speedscope.json"
        export_speedscope(path, self._report())
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded["profiles"][0]["unit"] == "seconds"
