"""Tests for repro.obs.slo: spec parsing, rule evaluation, gating."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.obs.slo import (
    SloRule,
    SloSpec,
    evaluate_slos,
    load_slo_spec,
    parse_toml_minimal,
    render_slo_results,
    slo_exit_code,
)

SPEC_TEXT = """\
# comment line
[bench]
tolerance = 0.3
absolute_tolerance = 0.5

[slo.warm_fix_s]
source = "bench"
key = "steering_cache.warm_s_per_fix"
max = 0.1

[slo.hit_rate]
source = "ledger"
kind = "ratio"
num = "metric:engine.cache_hits"
den = ["metric:engine.cache_hits", "metric:engine.cache_misses"]
min = 0.5
required = false
"""


class TestMinimalTomlParser:
    def test_tables_scalars_arrays_comments(self):
        data = parse_toml_minimal(SPEC_TEXT)
        assert data["bench"]["tolerance"] == 0.3
        assert data["slo"]["warm_fix_s"]["max"] == 0.1
        assert data["slo"]["hit_rate"]["den"] == [
            "metric:engine.cache_hits",
            "metric:engine.cache_misses",
        ]
        assert data["slo"]["hit_rate"]["required"] is False

    def test_matches_tomllib_on_the_spec_subset(self):
        tomllib = pytest.importorskip("tomllib")
        assert parse_toml_minimal(SPEC_TEXT) == tomllib.loads(SPEC_TEXT)

    def test_bad_line_raises(self):
        with pytest.raises(ConfigurationError, match="key = value"):
            parse_toml_minimal("just words\n")

    def test_bad_scalar_raises(self):
        with pytest.raises(ConfigurationError, match="cannot parse"):
            parse_toml_minimal("x = nonsense\n")


class TestLoadSpec:
    def test_committed_spec_loads(self):
        # The repository slo.toml must stay inside the parser subset.
        spec = load_slo_spec()
        assert spec.rules, "committed slo.toml defines no rules"
        assert spec.bench_tolerance > 0

    def test_load_from_path(self, tmp_path):
        path = tmp_path / "slo.toml"
        path.write_text(SPEC_TEXT, encoding="utf-8")
        spec = load_slo_spec(path)
        assert spec.bench_tolerance == 0.3
        assert spec.bench_absolute_tolerance == 0.5
        by_name = {r.name: r for r in spec.rules}
        assert by_name["warm_fix_s"].max == 0.1
        assert by_name["hit_rate"].kind == "ratio"
        assert by_name["hit_rate"].required is False

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_slo_spec(tmp_path / "absent.toml")

    @pytest.mark.parametrize(
        "body",
        [
            'source = "nowhere"\nkey = "a.b"\nmax = 1\n',
            'kind = "median"\nkey = "a.b"\nmax = 1\n',
            "max = 1\n",  # value rule without key
            'kind = "ratio"\nmin = 0.5\n',  # ratio without num/den
            'key = "a.b"\n',  # no min and no max
        ],
    )
    def test_malformed_rules_raise(self, tmp_path, body):
        path = tmp_path / "slo.toml"
        path.write_text(f"[slo.broken]\n{body}", encoding="utf-8")
        with pytest.raises(ConfigurationError):
            load_slo_spec(path)


def spec_with(*rules):
    return SloSpec(rules=list(rules))


def ledger_record(results=None, metrics=()):
    return {
        "run_id": "r",
        "metrics": list(metrics),
        "spans": {},
        "results": results or {},
    }


class TestEvaluate:
    def test_bench_value_within_bounds(self):
        rule = SloRule(name="warm", source="bench",
                       key="steering_cache.warm_s_per_fix", max=0.1)
        (result,) = evaluate_slos(
            spec_with(rule),
            bench={"steering_cache": {"warm_s_per_fix": 0.02}},
        )
        assert result.status == "ok"
        assert result.value == pytest.approx(0.02)

    def test_bench_value_violating_ceiling_fails(self):
        rule = SloRule(name="warm", source="bench",
                       key="steering_cache.warm_s_per_fix", max=0.1)
        (result,) = evaluate_slos(
            spec_with(rule),
            bench={"steering_cache": {"warm_s_per_fix": 1.0}},
        )
        assert result.status == "fail"
        assert "ceiling" in result.detail

    def test_floor_violation_fails(self):
        rule = SloRule(name="rate", source="bench", key="r", min=5.0)
        (result,) = evaluate_slos(spec_with(rule), bench={"r": 1.0})
        assert result.status == "fail"
        assert "floor" in result.detail

    def test_missing_required_data_fails(self):
        rule = SloRule(name="warm", source="bench", key="absent.key",
                       max=0.1)
        (result,) = evaluate_slos(spec_with(rule), bench={})
        assert result.status == "fail"

    def test_missing_optional_data_skips(self):
        rule = SloRule(name="warm", source="bench", key="absent.key",
                       max=0.1, required=False)
        (result,) = evaluate_slos(spec_with(rule), bench={})
        assert result.status == "skip"

    def test_ledger_value_uses_newest_answering_record(self):
        rule = SloRule(name="p95", source="ledger",
                       key="result:bloc.p95_m", max=1.0)
        records = [
            ledger_record(results={"bloc.p95_m": 0.4}),
            ledger_record(results={"bloc.p95_m": 0.9}),
            ledger_record(results={}),  # newest cannot answer
        ]
        (result,) = evaluate_slos(
            spec_with(rule), ledger_records=records
        )
        assert result.status == "ok"
        assert result.value == pytest.approx(0.9)

    def test_ledger_ratio_skips_zero_denominator(self):
        rule = SloRule(
            name="hits", source="ledger", kind="ratio",
            num="metric:c.hits",
            den=("metric:c.hits", "metric:c.misses"),
            min=0.5, required=False,
        )
        zero = ledger_record(metrics=[
            {"type": "counter", "name": "c.hits", "value": 0},
            {"type": "counter", "name": "c.misses", "value": 0},
        ])
        good = ledger_record(metrics=[
            {"type": "counter", "name": "c.hits", "value": 3},
            {"type": "counter", "name": "c.misses", "value": 1},
        ])
        (result,) = evaluate_slos(
            spec_with(rule), ledger_records=[good, zero]
        )
        # Newest record divides by zero -> falls back to the older one.
        assert result.status == "ok"
        assert result.value == pytest.approx(0.75)

    def test_exit_code(self):
        ok = SloRule(name="a", source="bench", key="x", max=10)
        bad = SloRule(name="b", source="bench", key="x", max=0.1)
        results = evaluate_slos(spec_with(ok, bad), bench={"x": 1.0})
        assert [r.status for r in results] == ["ok", "fail"]
        assert slo_exit_code(results) == 1
        assert slo_exit_code(results[:1]) == 0

    def test_render_includes_verdict(self):
        rule = SloRule(name="a", source="bench", key="x", max=10)
        text = render_slo_results(
            evaluate_slos(spec_with(rule), bench={"x": 1.0})
        )
        assert "SLO gate: 1 ok, 0 failed, 0 skipped" in text
        assert render_slo_results([]) == "(no SLO rules defined)"
