"""Hypothesis property tests on the core algorithmic invariants.

These complement the example-based tests with randomized coverage of the
claims the paper's math rests on: Eq. 10's offset independence for *any*
channels and offsets, likelihood invariances, and the compositional
behaviour of observation subsetting.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.correction import correct_phase_offsets
from repro.core.likelihood import compute_likelihood_map
from repro.core.observations import ChannelObservations
from repro.rf.antenna import Anchor
from repro.utils.geometry2d import Point
from repro.utils.gridmap import Grid2D

seeds = st.integers(min_value=0, max_value=2**31 - 1)
small_counts = st.integers(min_value=2, max_value=4)


def random_observations(seed, num_anchors=3, num_antennas=2, num_bands=4,
                        with_offsets=True):
    rng = np.random.default_rng(seed)
    anchors = [
        Anchor(
            position=Point(float(3 * np.cos(2 * np.pi * i / num_anchors)),
                           float(3 * np.sin(2 * np.pi * i / num_anchors))),
            num_antennas=num_antennas,
            name=f"A{i}",
        )
        for i in range(num_anchors)
    ]
    shape = (num_anchors, num_antennas, num_bands)
    h_tag = rng.normal(size=shape) + 1j * rng.normal(size=shape)
    h_master = rng.normal(size=shape) + 1j * rng.normal(size=shape)
    tag = h_tag.copy()
    master = h_master.copy()
    if with_offsets:
        phi_tag = rng.uniform(-np.pi, np.pi, num_bands)
        phi_anchor = rng.uniform(-np.pi, np.pi, (num_anchors, num_bands))
        for i in range(num_anchors):
            tag[i] *= np.exp(1j * (phi_tag - phi_anchor[i]))[None, :]
            master[i] *= np.exp(
                1j * (phi_anchor[0] - phi_anchor[i])
            )[None, :]
    return (
        ChannelObservations(
            anchors=anchors,
            master_index=0,
            frequencies_hz=2.404e9 + 2e6 * np.arange(num_bands),
            tag_to_anchor=tag,
            master_to_anchor=master,
        ),
        h_tag,
        h_master,
    )


class TestCorrectionInvariants:
    @given(seeds, small_counts, small_counts)
    @settings(max_examples=40, deadline=None)
    def test_alpha_independent_of_offsets(
        self, seed, num_anchors, num_antennas
    ):
        """Eq. 10 for arbitrary channels: alpha(with offsets) ==
        alpha(without offsets)."""
        with_offsets, h_tag, h_master = random_observations(
            seed, num_anchors, num_antennas
        )
        without, _, _ = random_observations(
            seed, num_anchors, num_antennas, with_offsets=False
        )
        a = correct_phase_offsets(with_offsets).alpha
        b = correct_phase_offsets(without).alpha
        assert np.allclose(a, b, atol=1e-9)

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_global_phase_invariance(self, seed):
        """Multiplying every tag measurement by one global phasor (a tag
        oscillator offset common to the sweep) must not change alpha's
        magnitude and only add a constant phase... in fact it cancels
        entirely, because alpha is degree-0 in the tag offset."""
        observations, _, _ = random_observations(seed)
        rotated_tag = observations.tag_to_anchor * np.exp(1j * 1.234)
        import dataclasses

        rotated = dataclasses.replace(
            observations, tag_to_anchor=rotated_tag
        )
        a = correct_phase_offsets(observations).alpha
        b = correct_phase_offsets(rotated).alpha
        assert np.allclose(a, b, atol=1e-9)


class TestLikelihoodInvariants:
    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_map_nonnegative_and_finite(self, seed):
        observations, _, _ = random_observations(seed)
        corrected = correct_phase_offsets(observations)
        grid = Grid2D(-4.0, 4.0, -4.0, 4.0, 0.5)
        result = compute_likelihood_map(corrected, grid)
        assert np.all(result.combined >= 0)
        assert np.all(np.isfinite(result.combined))

    @given(seeds, st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=15, deadline=None)
    def test_scale_invariance(self, seed, scale):
        """Scaling all measured channels (a TX power change) must not
        move the normalised likelihood at all."""
        import dataclasses

        observations, _, _ = random_observations(seed)
        scaled = dataclasses.replace(
            observations,
            tag_to_anchor=observations.tag_to_anchor * scale,
            master_to_anchor=observations.master_to_anchor * scale,
        )
        grid = Grid2D(-4.0, 4.0, -4.0, 4.0, 0.5)
        a = compute_likelihood_map(
            correct_phase_offsets(observations), grid
        ).combined
        b = compute_likelihood_map(
            correct_phase_offsets(scaled), grid
        ).combined
        assert np.allclose(a, b, atol=1e-9)


class TestSubsettingInvariants:
    @given(seeds, st.integers(min_value=1, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_band_then_antenna_commutes(self, seed, keep_bands):
        observations, _, _ = random_observations(
            seed, num_antennas=3, num_bands=4
        )
        bands = list(range(keep_bands))
        a = observations.select_bands(bands).select_antennas(2)
        b = observations.select_antennas(2).select_bands(bands)
        assert np.array_equal(a.tag_to_anchor, b.tag_to_anchor)
        for anchor_a, anchor_b in zip(a.anchors, b.anchors):
            assert anchor_a.antenna_positions() == anchor_b.antenna_positions()

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_anchor_subset_preserves_alpha(self, seed):
        """Correcting then subsetting == subsetting then correcting, for
        the surviving anchors (the correction is per-anchor)."""
        observations, _, _ = random_observations(seed, num_anchors=4)
        subset_first = correct_phase_offsets(
            observations.select_anchors([0, 2])
        ).alpha
        correct_first = correct_phase_offsets(observations).alpha[[0, 2]]
        assert np.allclose(subset_first, correct_first, atol=1e-9)
