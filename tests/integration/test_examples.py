"""Smoke tests: the example scripts must import and expose main()."""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_example(path: Path):
    import sys

    name = f"example_{path.stem}"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    # Register before executing: dataclasses with string annotations look
    # the module up in sys.modules during class creation.
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    except BaseException:
        sys.modules.pop(name, None)
        raise
    return module


class TestExamples:
    def test_at_least_four_examples(self):
        assert len(EXAMPLE_FILES) >= 4

    def test_quickstart_present(self):
        names = {p.stem for p in EXAMPLE_FILES}
        assert "quickstart" in names

    @pytest.mark.parametrize(
        "path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES]
    )
    def test_importable_with_main(self, path):
        module = load_example(path)
        assert callable(getattr(module, "main", None)), (
            f"{path.name} must expose a main()"
        )

    def test_lost_keys_zones_cover_room(self):
        module = load_example(EXAMPLES_DIR / "lost_keys.py")
        testbed = module.build_home()
        for zone in module.ZONES:
            centre = zone.centre()
            assert testbed.environment.contains(centre), zone.name

    def test_factory_path_inside_cell(self):
        module = load_example(EXAMPLES_DIR / "asset_tracking.py")
        testbed = module.build_factory_cell()
        for point in module.transport_path():
            assert testbed.environment.contains(point)

    def test_wifi_blacklist_spares_most_channels(self):
        module = load_example(EXAMPLES_DIR / "interference_survey.py")
        cm = module.blacklist_under_wifi()
        assert 8 <= cm.num_used < 37
