"""End-to-end integration tests across all subsystems.

These are the "does the whole paper pipeline hang together" checks:
IQ-level measurement through the real CSI extractor feeding the real
localizer; the two measurement fidelities agreeing; schemes keeping their
expected ordering on a shared miniature dataset.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AoaLocalizer,
    BlocConfig,
    BlocLocalizer,
    build_dataset,
    evaluate,
    shortest_distance_localizer,
)
from repro.ble.channels import ChannelMap
from repro.core import correct_phase_offsets
from repro.sim import ChannelMeasurementModel, IqMeasurementModel
from repro.sim.testbed import open_room_testbed, vicon_testbed
from repro.utils.geometry2d import Point


class TestIqPipeline:
    @pytest.fixture(scope="class")
    def iq_observations(self):
        testbed = open_room_testbed()
        model = IqMeasurementModel(
            testbed=testbed,
            seed=21,
            snr_db=40.0,
            channel_map=ChannelMap(tuple(range(0, 37, 4))),
        )
        return model.measure(Point(0.7, -0.5))

    def test_iq_measurement_localizes(self, iq_observations):
        result = BlocLocalizer().locate(iq_observations)
        error = result.error_m(iq_observations.ground_truth)
        assert error < 0.5

    def test_fidelities_agree_after_correction(self, iq_observations):
        """Channel-fidelity and IQ-fidelity measurements of the same
        scene must produce compatible *corrected* channels: their phase
        difference should be a smooth function, not noise."""
        testbed = open_room_testbed()
        channel_model = ChannelMeasurementModel(
            testbed=testbed,
            seed=22,
            snr_db=60.0,
            oscillator_drift_std=0.0,
            calibration_error_m=0.0,
            element_phase_error_deg=0.0,
            element_gain_error_db=0.0,
            channel_map=ChannelMap(tuple(range(0, 37, 4))),
        )
        channel_obs = channel_model.measure(Point(0.7, -0.5))
        alpha_iq = correct_phase_offsets(iq_observations).alpha
        alpha_ch = correct_phase_offsets(channel_obs).alpha
        # Compare phases of corrected channels for one slave anchor; the
        # IQ chain has an overall scale, so compare phase differences.
        phase_iq = np.angle(alpha_iq[1, 0, :] * np.conj(alpha_iq[1, 0, 0]))
        phase_ch = np.angle(alpha_ch[1, 0, :] * np.conj(alpha_ch[1, 0, 0]))
        mismatch = np.angle(np.exp(1j * (phase_iq - phase_ch)))
        assert np.max(np.abs(mismatch)) < 0.35


class TestSchemeOrdering:
    @pytest.fixture(scope="class")
    def mini_dataset(self):
        testbed = vicon_testbed()
        return build_dataset(testbed, num_positions=15, seed=23)

    @pytest.fixture(scope="class")
    def runs(self, mini_dataset):
        config = BlocConfig(grid_resolution_m=0.08)
        return {
            "bloc": evaluate(BlocLocalizer(config=config), mini_dataset),
            "aoa": evaluate(AoaLocalizer(), mini_dataset),
            "shortest": evaluate(
                shortest_distance_localizer(config=config), mini_dataset
            ),
        }

    def test_bloc_beats_aoa(self, runs):
        assert (
            runs["bloc"].stats().median_m()
            < runs["aoa"].stats().median_m()
        )

    def test_bloc_beats_shortest(self, runs):
        assert (
            runs["bloc"].stats().median_m()
            < runs["shortest"].stats().median_m()
        )

    def test_no_failures(self, runs):
        for run in runs.values():
            assert run.num_failed == 0

    def test_bandwidth_helps(self, mini_dataset):
        config = BlocConfig(grid_resolution_m=0.08)
        bloc = BlocLocalizer(config=config)
        full = evaluate(bloc, mini_dataset)
        narrow = evaluate(
            bloc,
            mini_dataset,
            transform=lambda o: o.select_bandwidth(2e6),
        )
        assert (
            full.stats().median_m() < narrow.stats().median_m() * 1.05
        )


class TestRepeatability:
    def test_same_seed_same_fix(self):
        testbed = vicon_testbed()
        model = ChannelMeasurementModel(testbed=testbed, seed=29)
        localizer = BlocLocalizer(config=BlocConfig(grid_resolution_m=0.08))
        tag = Point(0.4, 1.1)
        first = localizer.locate(model.measure(tag), keep_map=False)
        second = localizer.locate(model.measure(tag), keep_map=False)
        assert (first.position - second.position).norm() < 1e-12
