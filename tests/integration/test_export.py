"""Tests for repro.experiments.export: CSV series export.

Uses a tiny dataset size so the underlying evaluation runs are quick (and
shared with any other test using the common cache).
"""

from __future__ import annotations

import csv

import pytest

from repro.experiments.export import (
    export_all,
    export_bandwidth_csv,
    export_cdf_csv,
    export_spatial_rmse_csv,
)

N = 6  # tiny evaluation, cached across the tests below


def read_csv(path):
    with open(path, newline="", encoding="utf-8") as handle:
        return list(csv.reader(handle))


class TestCdfExport:
    def test_writes_one_file_per_scheme(self, tmp_path):
        written = export_cdf_csv(tmp_path, num_positions=N)
        assert set(written) == {"bloc", "aoa", "shortest"}
        for path in written.values():
            rows = read_csv(path)
            assert rows[0] == ["error_m", "cdf"]
            assert len(rows) == N + 1

    def test_cdf_monotone(self, tmp_path):
        written = export_cdf_csv(tmp_path, num_positions=N)
        rows = read_csv(written["bloc"])[1:]
        probabilities = [float(row[1]) for row in rows]
        assert probabilities == sorted(probabilities)
        assert probabilities[-1] == pytest.approx(1.0)


class TestBandwidthExport:
    def test_four_sweep_points(self, tmp_path):
        path = export_bandwidth_csv(tmp_path, num_positions=N)
        rows = read_csv(path)
        assert rows[0] == ["bandwidth_mhz", "median_error_m", "std_m"]
        assert [row[0] for row in rows[1:]] == ["2", "20", "40", "80"]


class TestSpatialExport:
    def test_long_format_grid(self, tmp_path):
        path = export_spatial_rmse_csv(tmp_path, num_positions=N)
        rows = read_csv(path)
        assert rows[0] == ["x_m", "y_m", "rmse_m"]
        assert len(rows) > 10  # 6x5 room at 1 m bins = 30 cells


class TestExportAll:
    def test_everything_written(self, tmp_path):
        written = export_all(tmp_path, num_positions=N)
        assert {"bloc", "aoa", "shortest", "bandwidth", "spatial_rmse"} <= set(
            written
        )
        for path in written.values():
            assert path.exists()
