"""Smoke tests for the experiment runners (full runs live in benchmarks/)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import EXPERIMENTS, fig04_gfsk, fig08_micro
from repro.experiments.common import (
    ExperimentResult,
    ExperimentRow,
)
from repro.experiments.fig13_location import corner_and_interior_rmse


class TestRegistry:
    def test_every_paper_figure_present(self):
        for figure in ("fig4", "fig6", "fig8", "fig9", "fig10", "fig11",
                       "fig12", "fig13"):
            assert figure in EXPERIMENTS

    def test_ablations_present(self):
        assert "ablations" in EXPERIMENTS


class TestResultType:
    def test_row_format(self):
        row = ExperimentRow("BLoc median", measured=86.2, paper=86.0)
        text = row.format()
        assert "86.0" in text and "86.2" in text

    def test_row_without_paper_value(self):
        row = ExperimentRow("qualitative", measured=1.0)
        assert "-" in row.format()

    def test_result_lookup(self):
        result = ExperimentResult(
            "x", "t", rows=[ExperimentRow("a", measured=1.0)]
        )
        assert result.measured("a") == 1.0
        with pytest.raises(KeyError):
            result.measured("b")

    def test_report_contains_notes(self):
        result = ExperimentResult("x", "t", notes=["caveat"])
        assert "caveat" in result.format_report()


class TestFastRunners:
    def test_fig4_runs(self):
        result = fig04_gfsk.run(num_bits=100)
        assert result.experiment_id == "fig4"
        assert len(result.rows) == 3

    def test_fig8b_separates_corrected_phase(self):
        result = fig08_micro.run_offset_cancellation()
        raw = result.measured("phase-increment spread, no correction")
        corrected = result.measured(
            "phase-increment spread, BLoc correction"
        )
        assert corrected < raw


class TestFig13Helpers:
    def test_corner_interior_split(self):
        rmse = np.ones((6, 6))
        rmse[0, 0] = 3.0  # a bad corner bin
        corner, interior = corner_and_interior_rmse(
            np.arange(7), np.arange(7), rmse
        )
        assert corner > interior

    def test_nan_bins_ignored(self):
        rmse = np.full((4, 4), np.nan)
        rmse[1, 1] = 1.0
        corner, interior = corner_and_interior_rmse(
            np.arange(5), np.arange(5), rmse
        )
        assert np.isnan(corner) or corner >= 0
        assert interior == pytest.approx(1.0)
