"""Failure-injection tests: the pipeline must fail loudly, not wrongly.

A production localization system meets broken inputs: dead anchors,
all-zero channels, absurd SNR, packets lost in noise.  These tests pin
down the behaviour: clean errors from the library's exception hierarchy,
never NaN positions or silent garbage.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.ble.channels import ChannelMap
from repro.core import BlocConfig, BlocLocalizer
from repro.errors import (
    LocalizationError,
    MeasurementError,
    ReproError,
)
from repro.sim import ChannelMeasurementModel, IqMeasurementModel
from repro.sim.testbed import open_room_testbed
from repro.utils.geometry2d import Point


@pytest.fixture(scope="module")
def model():
    return ChannelMeasurementModel(testbed=open_room_testbed(), seed=17)


class TestDegenerateObservations:
    def test_all_zero_channels_raise_localization_error(self, model):
        observations = model.measure(Point(0.5, 0.5))
        broken = dataclasses.replace(
            observations,
            tag_to_anchor=np.zeros_like(observations.tag_to_anchor),
            master_to_anchor=np.zeros_like(observations.master_to_anchor),
        )
        with pytest.raises(LocalizationError):
            BlocLocalizer().locate(broken)

    def test_dead_slave_anchor_still_produces_fix(self, model):
        """One anchor reporting zeros must not crash the fix (its map is
        flat and contributes nothing); accuracy may degrade."""
        observations = model.measure(Point(0.5, 0.5))
        tag = observations.tag_to_anchor.copy()
        master = observations.master_to_anchor.copy()
        tag[2] = 0.0
        master[2] = 0.0
        broken = dataclasses.replace(
            observations, tag_to_anchor=tag, master_to_anchor=master
        )
        result = BlocLocalizer().locate(broken, keep_map=False)
        assert np.isfinite(result.position.x)
        assert np.isfinite(result.position.y)

    def test_result_is_always_finite(self, model):
        """Even at hopeless SNR the position must be a finite point."""
        hopeless = ChannelMeasurementModel(
            testbed=model.testbed, seed=18, snr_db=-20.0
        )
        observations = hopeless.measure(Point(0.5, 0.5))
        try:
            result = BlocLocalizer().locate(observations, keep_map=False)
        except LocalizationError:
            return  # refusing is acceptable
        assert np.isfinite(result.position.x)
        assert np.isfinite(result.position.y)

    def test_position_inside_grid(self, model):
        observations = model.measure(Point(0.5, 0.5))
        localizer = BlocLocalizer(config=BlocConfig(grid_margin_m=0.5))
        result = localizer.locate(observations, keep_map=False)
        grid = localizer.grid_for(observations)
        assert grid.contains(result.position)


class TestIqPacketLoss:
    def test_hopeless_snr_raises_measurement_error(self):
        testbed = open_room_testbed()
        iq_model = IqMeasurementModel(
            testbed=testbed,
            seed=19,
            snr_db=-30.0,
            channel_map=ChannelMap((0, 18)),
        )
        with pytest.raises(MeasurementError):
            iq_model.measure(Point(0.5, 0.5))


class TestExceptionHierarchy:
    def test_every_library_error_is_reproerror(self):
        from repro import errors

        for name in (
            "ConfigurationError",
            "ProtocolError",
            "CrcError",
            "DemodulationError",
            "CsiExtractionError",
            "GeometryError",
            "MeasurementError",
            "LocalizationError",
        ):
            assert issubclass(getattr(errors, name), ReproError)

    def test_single_except_clause_catches_pipeline_errors(self, model):
        observations = model.measure(Point(0.5, 0.5))
        broken = dataclasses.replace(
            observations,
            tag_to_anchor=np.zeros_like(observations.tag_to_anchor),
            master_to_anchor=np.zeros_like(observations.master_to_anchor),
        )
        try:
            BlocLocalizer().locate(broken)
        except ReproError:
            pass  # the whole pipeline surfaces through one base class
        else:
            pytest.fail("expected a ReproError")
