"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import main


class TestCli:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_floorplan(self, capsys):
        assert main(["floorplan", "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "M" in out and "#" in out

    def test_throughput(self, capsys):
        assert main(["throughput", "--sweeps", "2"]) == 0
        out = capsys.readouterr().out
        assert "airtime" in out

    def test_throughput_infeasible_rate_errors(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["throughput", "--sweeps", "10"])

    def test_evaluate_small(self, capsys):
        assert main(["evaluate", "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "BLoc" in out and "median" in out

    def test_demo(self, capsys):
        assert main(["demo", "-x", "0.5", "-y", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "error" in out
        assert "T" in out or "E" in out
