"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import main


class TestCli:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_floorplan(self, capsys):
        assert main(["floorplan", "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "M" in out and "#" in out

    def test_throughput(self, capsys):
        assert main(["throughput", "--sweeps", "2"]) == 0
        out = capsys.readouterr().out
        assert "airtime" in out

    def test_throughput_infeasible_rate_errors(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["throughput", "--sweeps", "10"])

    def test_evaluate_small(self, capsys):
        assert main(["evaluate", "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "BLoc" in out and "median" in out

    def test_demo(self, capsys):
        assert main(["demo", "-x", "0.5", "-y", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "error" in out
        assert "T" in out or "E" in out


class TestCliObservability:
    def test_demo_trace_exports_parseable_ndjson(self, capsys, tmp_path):
        from repro.obs import get_observer, load_ndjson

        path = tmp_path / "demo.ndjson"
        assert main(["demo", "--trace", str(path)]) == 0
        records = load_ndjson(path)
        assert records[0]["type"] == "meta"
        span_names = {r["name"] for r in records if r["type"] == "span"}
        assert {
            "correct", "map_likelihood", "find_peaks", "score_peaks"
        } <= span_names
        out = capsys.readouterr().out
        assert "span timings" in out and "metrics" in out
        # The observer must be uninstalled again after the command.
        assert get_observer().enabled is False

    def test_evaluate_trace_and_metrics(self, capsys, tmp_path):
        from repro.obs import load_ndjson

        path = tmp_path / "eval.ndjson"
        assert main(
            ["evaluate", "-n", "2", "--trace", str(path), "--metrics"]
        ) == 0
        records = load_ndjson(path)
        spans = [r for r in records if r["type"] == "span"]
        fix_ids = {s["span_id"] for s in spans if s["name"] == "fix"}
        assert fix_ids  # one root span per fix
        per_fix_children = {
            s["name"] for s in spans if s["parent_id"] in fix_ids
        }
        assert len(per_fix_children) >= 4
        metric_names = {
            r["name"] for r in records if r["type"] in (
                "counter", "gauge", "histogram"
            )
        }
        assert "ble.crc_failures" in metric_names
        assert "peaks.candidates" in metric_names
        assert "eval.fix_latency_s" in metric_names
        out = capsys.readouterr().out
        assert "ble.crc_failures" in out
        assert "eval.fix_latency_s" in out

    def test_evaluate_without_flags_stays_unobserved(self, capsys):
        from repro.obs import get_observer

        assert main(["evaluate", "-n", "2", "--no-ledger"]) == 0
        out = capsys.readouterr().out
        assert "span timings" not in out
        assert get_observer().enabled is False

    def test_evaluate_profile_exports_flamegraph(self, capsys, tmp_path):
        import json

        prefix = tmp_path / "prof"
        assert main(
            ["evaluate", "-n", "2", "--no-ledger",
             "--profile", str(prefix)]
        ) == 0
        folded = (tmp_path / "prof.folded").read_text(encoding="utf-8")
        for line in folded.strip().splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack and int(count) > 0
        doc = json.loads(
            (tmp_path / "prof.speedscope.json").read_text(
                encoding="utf-8"
            )
        )
        assert doc["profiles"][0]["type"] == "sampled"
        out = capsys.readouterr().out
        assert "[obs] profiler:" in out


class TestCliLedgerAndSlo:
    def _evaluate(self, ledger_path, n="2"):
        return main(
            ["evaluate", "-n", n, "--ledger", str(ledger_path)]
        )

    def test_evaluate_appends_run_record(self, capsys, tmp_path):
        from repro.obs import RunLedger

        path = tmp_path / "runs.ndjson"
        assert self._evaluate(path) == 0
        (record,) = RunLedger(path).load()
        assert record["type"] == "run"
        assert record["command"] == "evaluate"
        assert record["host"]["cpu_count"] >= 1
        assert "fix" in record["spans"]
        assert any(
            key.endswith(".median_m") for key in record["results"]
        )
        assert "[obs] run" in capsys.readouterr().out

    def test_obs_runs_diff_report(self, capsys, tmp_path):
        path = tmp_path / "runs.ndjson"
        assert self._evaluate(path) == 0
        assert self._evaluate(path) == 0
        capsys.readouterr()

        assert main(["obs", "runs", "--ledger", str(path)]) == 0
        out = capsys.readouterr().out
        assert "run_id" in out and out.count("evaluate") == 2

        assert main(
            ["obs", "diff", "--ledger", str(path), "--", "-2", "-1"]
        ) == 0
        out = capsys.readouterr().out
        assert "A:" in out and "B:" in out
        assert "result:bloc.median_m" in out

        assert main(["obs", "report", "--ledger", str(path)]) == 0
        out = capsys.readouterr().out
        assert "== runs ==" in out
        assert "latest diff" in out

    def test_obs_runs_empty_ledger(self, capsys, tmp_path):
        path = tmp_path / "absent.ndjson"
        assert main(["obs", "runs", "--ledger", str(path)]) == 0
        assert "empty" in capsys.readouterr().out

    def test_obs_diff_bad_ref_errors(self, capsys, tmp_path):
        path = tmp_path / "runs.ndjson"
        assert self._evaluate(path) == 0
        capsys.readouterr()
        assert main(
            ["obs", "diff", "--ledger", str(path), "zzz", "-1"]
        ) == 2
        assert "error" in capsys.readouterr().err

    SLO_SPEC = """\
[slo.warm_fix_s]
source = "bench"
key = "steering_cache.warm_s_per_fix"
max = 0.1

[slo.cache_hit_rate]
source = "ledger"
kind = "ratio"
num = "metric:engine.cache_hits"
den = ["metric:engine.cache_hits", "metric:engine.cache_misses"]
min = 0.5
"""

    def test_obs_slo_gate_passes_and_fails(self, capsys, tmp_path):
        import json

        path = tmp_path / "runs.ndjson"
        assert self._evaluate(path) == 0
        capsys.readouterr()
        spec_path = tmp_path / "slo.toml"
        spec_path.write_text(self.SLO_SPEC, encoding="utf-8")
        bench = {
            "benchmark": "localize",
            "steering_cache": {"warm_s_per_fix": 0.01},
        }
        bench_path = tmp_path / "bench.json"
        bench_path.write_text(json.dumps(bench), encoding="utf-8")
        gate = [
            "obs", "slo", "--ledger", str(path),
            "--spec", str(spec_path), "--bench", str(bench_path),
        ]
        assert main(gate) == 0
        out = capsys.readouterr().out
        assert "SLO gate: 2 ok, 0 failed, 0 skipped" in out

        bench["steering_cache"]["warm_s_per_fix"] = 5.0
        bench_path.write_text(json.dumps(bench), encoding="utf-8")
        assert main(gate) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out

    def test_obs_slo_missing_bench_errors(self, capsys, tmp_path):
        assert main(
            ["obs", "slo", "--ledger", str(tmp_path / "runs.ndjson"),
             "--bench", str(tmp_path / "absent.json")]
        ) == 2
        assert "error" in capsys.readouterr().err

    MERGED_SLO_SPEC = """\
[slo.warm_fix_s]
source = "bench"
key = "steering_cache.warm_s_per_fix"
max = 0.1

[slo.service_p95_s]
source = "bench"
key = "service.p95_s"
max = 1.0
"""

    def test_obs_slo_merges_repeated_bench_payloads(
        self, capsys, tmp_path
    ):
        import json

        spec_path = tmp_path / "slo.toml"
        spec_path.write_text(self.MERGED_SLO_SPEC, encoding="utf-8")
        localize = tmp_path / "bench_localize.json"
        localize.write_text(
            json.dumps({"steering_cache": {"warm_s_per_fix": 0.01}}),
            encoding="utf-8",
        )
        service = tmp_path / "bench_service.json"
        service.write_text(
            json.dumps({"service": {"p95_s": 0.05}}), encoding="utf-8"
        )
        assert main(
            ["obs", "slo", "--ledger", str(tmp_path / "runs.ndjson"),
             "--spec", str(spec_path),
             "--bench", str(localize), "--bench", str(service)]
        ) == 0
        out = capsys.readouterr().out
        assert "SLO gate: 2 ok, 0 failed, 0 skipped" in out


class TestCliDiagnostics:
    def test_evaluate_writes_bundles_and_diag_replays(
        self, capsys, tmp_path
    ):
        bundle_dir = tmp_path / "bundles"
        assert (
            main(
                [
                    "evaluate",
                    "-n",
                    "3",
                    "--bundle-dir",
                    str(bundle_dir),
                    "--bundle-worst",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "[diag] wrote 2 fix bundle(s)" in out
        bundles = sorted(bundle_dir.glob("*.npz"))
        assert len(bundles) == 2
        assert main(["diag", str(bundles[0]), "--explain", "--bands"]) == 0
        report = capsys.readouterr().out
        assert "fix bundle" in report
        assert (
            "bit-exact match with recorded estimate" in report
            or "matches recorded outcome" in report
        )

    def test_diag_missing_bundle_errors(self, capsys, tmp_path):
        assert main(["diag", str(tmp_path / "absent.npz")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_diag_rejects_garbage_file(self, capsys, tmp_path):
        junk = tmp_path / "junk.npz"
        junk.write_bytes(b"definitely not a bundle")
        assert main(["diag", str(junk)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_evaluate_without_bundle_dir_writes_nothing(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        assert main(["evaluate", "-n", "2"]) == 0
        assert "[diag]" not in capsys.readouterr().out
        assert list(tmp_path.glob("*.npz")) == []
