"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import main


class TestCli:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_floorplan(self, capsys):
        assert main(["floorplan", "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "M" in out and "#" in out

    def test_throughput(self, capsys):
        assert main(["throughput", "--sweeps", "2"]) == 0
        out = capsys.readouterr().out
        assert "airtime" in out

    def test_throughput_infeasible_rate_errors(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["throughput", "--sweeps", "10"])

    def test_evaluate_small(self, capsys):
        assert main(["evaluate", "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "BLoc" in out and "median" in out

    def test_demo(self, capsys):
        assert main(["demo", "-x", "0.5", "-y", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "error" in out
        assert "T" in out or "E" in out


class TestCliObservability:
    def test_demo_trace_exports_parseable_ndjson(self, capsys, tmp_path):
        from repro.obs import get_observer, load_ndjson

        path = tmp_path / "demo.ndjson"
        assert main(["demo", "--trace", str(path)]) == 0
        records = load_ndjson(path)
        assert records[0]["type"] == "meta"
        span_names = {r["name"] for r in records if r["type"] == "span"}
        assert {
            "correct", "map_likelihood", "find_peaks", "score_peaks"
        } <= span_names
        out = capsys.readouterr().out
        assert "span timings" in out and "metrics" in out
        # The observer must be uninstalled again after the command.
        assert get_observer().enabled is False

    def test_evaluate_trace_and_metrics(self, capsys, tmp_path):
        from repro.obs import load_ndjson

        path = tmp_path / "eval.ndjson"
        assert main(
            ["evaluate", "-n", "2", "--trace", str(path), "--metrics"]
        ) == 0
        records = load_ndjson(path)
        spans = [r for r in records if r["type"] == "span"]
        fix_ids = {s["span_id"] for s in spans if s["name"] == "fix"}
        assert fix_ids  # one root span per fix
        per_fix_children = {
            s["name"] for s in spans if s["parent_id"] in fix_ids
        }
        assert len(per_fix_children) >= 4
        metric_names = {
            r["name"] for r in records if r["type"] in (
                "counter", "gauge", "histogram"
            )
        }
        assert "ble.crc_failures" in metric_names
        assert "peaks.candidates" in metric_names
        assert "eval.fix_latency_s" in metric_names
        out = capsys.readouterr().out
        assert "ble.crc_failures" in out
        assert "eval.fix_latency_s" in out

    def test_evaluate_without_flags_stays_unobserved(self, capsys):
        from repro.obs import get_observer

        assert main(["evaluate", "-n", "2"]) == 0
        out = capsys.readouterr().out
        assert "span timings" not in out
        assert get_observer().enabled is False


class TestCliDiagnostics:
    def test_evaluate_writes_bundles_and_diag_replays(
        self, capsys, tmp_path
    ):
        bundle_dir = tmp_path / "bundles"
        assert (
            main(
                [
                    "evaluate",
                    "-n",
                    "3",
                    "--bundle-dir",
                    str(bundle_dir),
                    "--bundle-worst",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "[diag] wrote 2 fix bundle(s)" in out
        bundles = sorted(bundle_dir.glob("*.npz"))
        assert len(bundles) == 2
        assert main(["diag", str(bundles[0]), "--explain", "--bands"]) == 0
        report = capsys.readouterr().out
        assert "fix bundle" in report
        assert (
            "bit-exact match with recorded estimate" in report
            or "matches recorded outcome" in report
        )

    def test_diag_missing_bundle_errors(self, capsys, tmp_path):
        assert main(["diag", str(tmp_path / "absent.npz")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_diag_rejects_garbage_file(self, capsys, tmp_path):
        junk = tmp_path / "junk.npz"
        junk.write_bytes(b"definitely not a bundle")
        assert main(["diag", str(junk)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_evaluate_without_bundle_dir_writes_nothing(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        assert main(["evaluate", "-n", "2"]) == 0
        assert "[diag]" not in capsys.readouterr().out
        assert list(tmp_path.glob("*.npz")) == []
