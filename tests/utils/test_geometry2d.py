"""Tests for repro.utils.geometry2d: points, segments, reflections."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.utils.geometry2d import (
    Point,
    Segment,
    bearing_deg,
    distance,
    distance_matrix,
    mirror_point,
    pairwise_distances,
    polygon_contains,
    reflect_across_segment,
    segment_intersection,
    segments_cross,
)

finite_coord = st.floats(
    min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
)
points = st.builds(Point, finite_coord, finite_coord)


class TestPoint:
    def test_add_subtract(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)
        assert Point(3, 4) - Point(1, 2) == Point(2, 2)

    def test_scalar_multiplication_both_sides(self):
        assert Point(1, -2) * 3 == Point(3, -6)
        assert 3 * Point(1, -2) == Point(3, -6)

    def test_division(self):
        assert Point(2, 4) / 2 == Point(1, 2)

    def test_iteration_unpacks(self):
        x, y = Point(5, 7)
        assert (x, y) == (5, 7)

    def test_dot_and_cross(self):
        assert Point(1, 0).dot(Point(0, 1)) == 0
        assert Point(1, 0).cross(Point(0, 1)) == 1
        assert Point(0, 1).cross(Point(1, 0)) == -1

    def test_norm(self):
        assert Point(3, 4).norm() == pytest.approx(5.0)

    def test_normalized_unit_length(self):
        n = Point(3, 4).normalized()
        assert n.norm() == pytest.approx(1.0)
        assert n.x == pytest.approx(0.6)

    def test_normalized_zero_raises(self):
        with pytest.raises(GeometryError):
            Point(0, 0).normalized()

    def test_perpendicular_is_ccw(self):
        assert Point(1, 0).perpendicular() == Point(0, 1)

    def test_rotated_quarter_turn(self):
        r = Point(1, 0).rotated(math.pi / 2)
        assert r.x == pytest.approx(0.0, abs=1e-12)
        assert r.y == pytest.approx(1.0)

    def test_angle_to(self):
        assert Point(0, 0).angle_to(Point(1, 1)) == pytest.approx(math.pi / 4)

    def test_array_roundtrip(self):
        p = Point(1.5, -2.5)
        assert Point.from_array(p.as_array()) == p

    def test_frozen(self):
        with pytest.raises(Exception):
            Point(1, 2).x = 3

    @given(points, points)
    def test_distance_symmetry(self, p, q):
        assert distance(p, q) == pytest.approx(distance(q, p))

    @given(points, points, points)
    @settings(max_examples=50)
    def test_triangle_inequality(self, a, b, c):
        assert distance(a, c) <= distance(a, b) + distance(b, c) + 1e-6


class TestSegment:
    def test_degenerate_raises(self):
        with pytest.raises(GeometryError):
            Segment(Point(1, 1), Point(1, 1))

    def test_length_and_midpoint(self):
        s = Segment(Point(0, 0), Point(4, 0))
        assert s.length() == pytest.approx(4)
        assert s.midpoint() == Point(2, 0)

    def test_direction_and_normal_orthogonal(self):
        s = Segment(Point(0, 0), Point(2, 2))
        assert s.direction().dot(s.normal()) == pytest.approx(0.0)
        assert s.normal().norm() == pytest.approx(1.0)

    def test_project_parameter(self):
        s = Segment(Point(0, 0), Point(10, 0))
        assert s.project_parameter(Point(3, 5)) == pytest.approx(0.3)

    def test_contains_projection(self):
        s = Segment(Point(0, 0), Point(10, 0))
        assert s.contains_projection(Point(5, 1))
        assert not s.contains_projection(Point(11, 1))

    def test_point_at(self):
        s = Segment(Point(0, 0), Point(10, 0))
        assert s.point_at(0.25) == Point(2.5, 0)


class TestMirrorPoint:
    def test_mirror_across_x_axis(self):
        wall = Segment(Point(-1, 0), Point(1, 0))
        assert mirror_point(Point(0.5, 2), wall) == Point(0.5, -2)

    def test_mirror_across_diagonal(self):
        wall = Segment(Point(0, 0), Point(1, 1))
        m = mirror_point(Point(1, 0), wall)
        assert m.x == pytest.approx(0.0, abs=1e-12)
        assert m.y == pytest.approx(1.0)

    def test_point_on_line_is_fixed(self):
        wall = Segment(Point(0, 0), Point(5, 0))
        m = mirror_point(Point(2, 0), wall)
        assert m.x == pytest.approx(2.0)
        assert m.y == pytest.approx(0.0, abs=1e-12)

    @given(points)
    @settings(max_examples=50)
    def test_mirror_is_involution(self, p):
        wall = Segment(Point(-3, -1), Point(4, 2))
        twice = mirror_point(mirror_point(p, wall), wall)
        assert twice.x == pytest.approx(p.x, abs=1e-6)
        assert twice.y == pytest.approx(p.y, abs=1e-6)

    @given(points)
    @settings(max_examples=50)
    def test_mirror_preserves_distance_to_line(self, p):
        wall = Segment(Point(0, 0), Point(1, 0))
        m = mirror_point(p, wall)
        assert abs(m.y) == pytest.approx(abs(p.y), abs=1e-9)


class TestIntersection:
    def test_crossing_segments(self):
        s1 = Segment(Point(0, -1), Point(0, 1))
        s2 = Segment(Point(-1, 0), Point(1, 0))
        hit = segment_intersection(s1, s2)
        assert hit == Point(0, 0)

    def test_non_crossing(self):
        s1 = Segment(Point(0, 1), Point(1, 1))
        s2 = Segment(Point(0, 0), Point(1, 0))
        assert segment_intersection(s1, s2) is None

    def test_parallel_returns_none(self):
        s1 = Segment(Point(0, 0), Point(1, 0))
        s2 = Segment(Point(0, 1), Point(1, 1))
        assert segment_intersection(s1, s2) is None

    def test_collinear_returns_none(self):
        s1 = Segment(Point(0, 0), Point(1, 0))
        s2 = Segment(Point(0.5, 0), Point(2, 0))
        assert segment_intersection(s1, s2) is None

    def test_touching_at_endpoint(self):
        s1 = Segment(Point(0, 0), Point(1, 0))
        s2 = Segment(Point(1, 0), Point(1, 1))
        hit = segment_intersection(s1, s2)
        assert hit is not None
        assert hit.x == pytest.approx(1.0)

    def test_segments_cross_helper(self):
        assert segments_cross(
            Segment(Point(0, -1), Point(0, 1)),
            Segment(Point(-1, 0), Point(1, 0)),
        )


class TestReflectAcrossSegment:
    def test_symmetric_bounce(self):
        wall = Segment(Point(-5, 0), Point(5, 0))
        bounce = reflect_across_segment(Point(-1, 1), Point(1, 1), wall)
        assert bounce is not None
        assert bounce.x == pytest.approx(0.0, abs=1e-9)
        assert bounce.y == pytest.approx(0.0, abs=1e-12)

    def test_bounce_misses_finite_wall(self):
        wall = Segment(Point(10, 0), Point(11, 0))
        assert reflect_across_segment(Point(-1, 1), Point(1, 1), wall) is None

    def test_equal_angles(self):
        wall = Segment(Point(-5, 0), Point(5, 0))
        src, dst = Point(-2, 1), Point(3, 2)
        bounce = reflect_across_segment(src, dst, wall)
        incidence = math.atan2(src.y - bounce.y, src.x - bounce.x)
        departure = math.atan2(dst.y - bounce.y, dst.x - bounce.x)
        # Both measured from the wall plane: angles above the wall match.
        assert math.sin(incidence) == pytest.approx(
            math.sin(math.pi - departure), rel=1e-6
        )

    def test_path_length_equals_image_distance(self):
        wall = Segment(Point(-5, 0), Point(5, 0))
        src, dst = Point(-2, 1.5), Point(3, 2.5)
        bounce = reflect_across_segment(src, dst, wall)
        via = distance(src, bounce) + distance(bounce, dst)
        image = mirror_point(src, wall)
        assert via == pytest.approx(distance(image, dst), rel=1e-9)


class TestArrays:
    def test_distance_matrix_shape_and_values(self):
        a = np.array([[0, 0], [1, 0]])
        b = np.array([[0, 0], [0, 2], [3, 4]])
        m = distance_matrix(a, b)
        assert m.shape == (2, 3)
        assert m[0, 0] == 0
        assert m[0, 2] == pytest.approx(5)

    def test_distance_matrix_bad_shape(self):
        with pytest.raises(GeometryError):
            distance_matrix(np.zeros((2, 3)), np.zeros((2, 2)))

    def test_pairwise_symmetric_zero_diagonal(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, -1.0]])
        m = pairwise_distances(pts)
        assert np.allclose(m, m.T)
        assert np.allclose(np.diag(m), 0)


class TestMisc:
    def test_bearing_deg(self):
        assert bearing_deg(Point(0, 0), Point(0, 1)) == pytest.approx(90)

    def test_polygon_contains_square(self):
        square = (Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2))
        assert polygon_contains(square, Point(1, 1))
        assert not polygon_contains(square, Point(3, 1))
