"""Tests for repro.utils.gridmap.Grid2D."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, GeometryError
from repro.utils.geometry2d import Point
from repro.utils.gridmap import Grid2D


@pytest.fixture()
def grid():
    return Grid2D(-1.0, 1.0, 0.0, 0.5, 0.25)


class TestConstruction:
    def test_counts(self, grid):
        assert grid.num_x == 9
        assert grid.num_y == 3
        assert grid.shape == (3, 9)
        assert grid.size == 27

    def test_bad_bounds(self):
        with pytest.raises(GeometryError):
            Grid2D(1.0, -1.0, 0.0, 1.0, 0.1)

    def test_bad_resolution(self):
        with pytest.raises(ConfigurationError):
            Grid2D(0.0, 1.0, 0.0, 1.0, 0.0)

    def test_too_few_nodes(self):
        with pytest.raises(ConfigurationError):
            Grid2D(0.0, 0.1, 0.0, 0.1, 1.0)

    def test_from_bounds(self):
        g = Grid2D.from_bounds((0.0, 1.0, 0.0, 2.0), 0.5)
        assert g.shape == (5, 3)


class TestAxes:
    def test_x_axis_endpoints(self, grid):
        xs = grid.x_axis()
        assert xs[0] == pytest.approx(-1.0)
        assert xs[-1] == pytest.approx(1.0)

    def test_y_axis_spacing(self, grid):
        ys = grid.y_axis()
        assert np.allclose(np.diff(ys), 0.25)

    def test_points_shape_and_order(self, grid):
        pts = grid.points()
        assert pts.shape == (27, 2)
        # Row-major: x varies fastest.
        assert pts[1, 0] - pts[0, 0] == pytest.approx(0.25)
        assert pts[1, 1] == pts[0, 1]


class TestConversions:
    def test_reshape_roundtrip(self, grid):
        flat = np.arange(grid.size, dtype=float)
        shaped = grid.reshape(flat)
        assert shaped.shape == grid.shape
        assert shaped[0, 1] == 1.0

    def test_reshape_wrong_size(self, grid):
        with pytest.raises(ConfigurationError):
            grid.reshape(np.zeros(5))

    def test_index_of_exact_node(self, grid):
        assert grid.index_of(Point(-1.0, 0.0)) == (0, 0)
        assert grid.index_of(Point(1.0, 0.5)) == (2, 8)

    def test_index_of_clips_outside(self, grid):
        assert grid.index_of(Point(-10, -10)) == (0, 0)
        assert grid.index_of(Point(10, 10)) == (2, 8)

    def test_point_at_roundtrip(self, grid):
        p = grid.point_at(1, 4)
        assert grid.index_of(p) == (1, 4)

    def test_point_at_out_of_range(self, grid):
        with pytest.raises(ConfigurationError):
            grid.point_at(5, 0)

    def test_contains(self, grid):
        assert grid.contains(Point(0.0, 0.25))
        assert not grid.contains(Point(0.0, 0.75))

    @given(
        st.floats(min_value=-1, max_value=1),
        st.floats(min_value=0, max_value=0.5),
    )
    @settings(max_examples=40)
    def test_nearest_node_within_half_resolution(self, x, y):
        grid = Grid2D(-1.0, 1.0, 0.0, 0.5, 0.25)
        row, col = grid.index_of(Point(x, y))
        node = grid.point_at(row, col)
        assert abs(node.x - x) <= 0.125 + 1e-9
        assert abs(node.y - y) <= 0.125 + 1e-9


class TestWindow:
    def test_interior_window_full_size(self, grid):
        values = np.arange(grid.size, dtype=float).reshape(grid.shape)
        w = grid.window(values, 1, 4, 1)
        assert w.shape == (3, 3)
        assert w[1, 1] == values[1, 4]

    def test_corner_window_clipped(self, grid):
        values = np.zeros(grid.shape)
        w = grid.window(values, 0, 0, 2)
        assert w.shape == (3, 3)

    def test_window_shape_mismatch(self, grid):
        with pytest.raises(ConfigurationError):
            grid.window(np.zeros((2, 2)), 0, 0, 1)


class TestCoarsen:
    def test_coarsened_resolution(self, grid):
        coarse = grid.coarsened(2)
        assert coarse.resolution == pytest.approx(0.5)
        assert coarse.x_min == grid.x_min

    def test_coarsened_invalid(self, grid):
        with pytest.raises(ConfigurationError):
            grid.coarsened(0)
