"""Tests for repro.utils.complexutils: phases, dB, circular statistics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.complexutils import (
    circular_mean,
    combine_amplitude_phase,
    db,
    mag2db,
    normalize_peak,
    phase_deg,
    random_phases,
    unit_phasor,
    unwrap_phase,
    wrap_phase,
)

angles = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)


class TestWrap:
    def test_wrap_inside_range_unchanged(self):
        assert wrap_phase(1.0) == pytest.approx(1.0)

    def test_wrap_large_angle(self):
        assert wrap_phase(2 * np.pi + 0.3) == pytest.approx(0.3)

    def test_wrap_negative(self):
        assert wrap_phase(-2 * np.pi - 0.3) == pytest.approx(-0.3)

    @given(angles)
    @settings(max_examples=60)
    def test_wrap_range(self, phi):
        wrapped = float(wrap_phase(phi))
        assert -np.pi - 1e-9 <= wrapped <= np.pi + 1e-9

    @given(angles)
    @settings(max_examples=60)
    def test_wrap_preserves_phasor(self, phi):
        assert np.exp(1j * float(wrap_phase(phi))) == pytest.approx(
            np.exp(1j * phi), abs=1e-9
        )

    def test_unwrap_recovers_line(self):
        true = np.linspace(0, 20, 50)
        recovered = unwrap_phase(wrap_phase(true))
        assert np.allclose(recovered, true, atol=1e-9)


class TestCircularMean:
    def test_simple_average(self):
        assert circular_mean(np.array([0.1, 0.3])) == pytest.approx(0.2)

    def test_wraparound_average(self):
        phases = np.radians([179.0, -179.0])
        mean = np.degrees(circular_mean(phases))
        assert abs(abs(mean) - 180.0) < 1e-6

    def test_axis(self):
        phases = np.array([[0.0, 0.2], [0.0, 0.4]])
        means = circular_mean(phases, axis=0)
        assert means[1] == pytest.approx(0.3)


class TestDbScales:
    def test_db_of_10(self):
        assert db(10.0) == pytest.approx(10.0)

    def test_mag2db_of_10(self):
        assert mag2db(10.0) == pytest.approx(20.0)

    def test_phase_deg(self):
        assert phase_deg(1j) == pytest.approx(90.0)


class TestNormalizePeak:
    def test_peak_becomes_one(self):
        out = normalize_peak(np.array([1.0, 4.0, 2.0]))
        assert out.max() == pytest.approx(1.0)
        assert out[0] == pytest.approx(0.25)

    def test_all_zero_unchanged(self):
        out = normalize_peak(np.zeros(5))
        assert np.all(out == 0)

    def test_empty(self):
        assert normalize_peak(np.array([])).size == 0


class TestPhasors:
    def test_unit_phasor_magnitude(self):
        assert abs(unit_phasor(0.7)) == pytest.approx(1.0)

    def test_combine_amplitude_phase(self):
        h = combine_amplitude_phase(2.0, np.pi / 2)
        assert abs(h) == pytest.approx(2.0)
        assert np.angle(h) == pytest.approx(np.pi / 2)

    def test_random_phases_range(self):
        rng = np.random.default_rng(0)
        phases = random_phases(rng, 1000)
        assert phases.shape == (1000,)
        assert phases.min() >= -np.pi
        assert phases.max() < np.pi
