"""Tests for repro.utils.rng: deterministic stream derivation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import derive_rng, make_rng, spawn_seeds


class TestMakeRng:
    def test_from_int_is_deterministic(self):
        a = make_rng(42).integers(0, 1000, 10)
        b = make_rng(42).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_passthrough_generator(self):
        g = np.random.default_rng(1)
        assert make_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestDeriveRng:
    def test_same_labels_same_stream(self):
        a = derive_rng(7, "noise", 3).integers(0, 10**6, 5)
        b = derive_rng(7, "noise", 3).integers(0, 10**6, 5)
        assert np.array_equal(a, b)

    def test_different_labels_different_streams(self):
        a = derive_rng(7, "noise", 3).integers(0, 10**6, 5)
        b = derive_rng(7, "noise", 4).integers(0, 10**6, 5)
        assert not np.array_equal(a, b)

    def test_different_parent_different_streams(self):
        a = derive_rng(7, "x").integers(0, 10**6, 5)
        b = derive_rng(8, "x").integers(0, 10**6, 5)
        assert not np.array_equal(a, b)

    def test_string_and_int_labels_coexist(self):
        a = derive_rng(1, "anchor", 0)
        b = derive_rng(1, "anchor", "0")
        # These may or may not collide in principle; they must both work.
        assert isinstance(a, np.random.Generator)
        assert isinstance(b, np.random.Generator)


class TestSpawnSeeds:
    def test_count_and_determinism(self):
        seeds = spawn_seeds(9, 6)
        assert len(seeds) == 6
        assert seeds == spawn_seeds(9, 6)

    def test_distinct(self):
        seeds = spawn_seeds(9, 20)
        assert len(set(seeds)) == 20
