"""Tests for repro.utils.validation argument checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_index,
    check_non_negative,
    check_positive,
    check_shape,
)


class TestScalars:
    def test_positive_accepts(self):
        assert check_positive("x", 2) == 2.0

    @pytest.mark.parametrize("bad", [0, -1, float("nan"), float("inf")])
    def test_positive_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_positive("x", bad)

    def test_non_negative_accepts_zero(self):
        assert check_non_negative("x", 0) == 0.0

    def test_non_negative_rejects(self):
        with pytest.raises(ConfigurationError):
            check_non_negative("x", -0.1)

    def test_in_range_inclusive(self):
        assert check_in_range("x", 1, 1, 2) == 1.0
        assert check_in_range("x", 2, 1, 2) == 2.0

    def test_in_range_rejects(self):
        with pytest.raises(ConfigurationError):
            check_in_range("x", 2.1, 1, 2)

    def test_error_message_names_argument(self):
        with pytest.raises(ConfigurationError, match="snr"):
            check_positive("snr", -3)


class TestIndex:
    def test_valid(self):
        assert check_index("i", 3, 5) == 3

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            check_index("i", 5, 5)

    def test_rejects_fractional(self):
        with pytest.raises(ConfigurationError):
            check_index("i", 1.5, 5)


class TestArrays:
    def test_finite_accepts(self):
        arr = check_finite("a", [1.0, 2.0])
        assert arr.shape == (2,)

    def test_finite_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            check_finite("a", [1.0, float("nan")])

    def test_shape_exact(self):
        check_shape("a", np.zeros((2, 3)), (2, 3))

    def test_shape_wildcard(self):
        check_shape("a", np.zeros((7, 3)), (None, 3))

    def test_shape_rejects(self):
        with pytest.raises(ConfigurationError):
            check_shape("a", np.zeros((2, 2)), (2, 3))
