"""Tests for repro.viz: ASCII map rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.testbed import vicon_testbed
from repro.utils.geometry2d import Point
from repro.utils.gridmap import Grid2D
from repro.viz import render_map, render_testbed


@pytest.fixture()
def grid():
    return Grid2D(0.0, 4.0, 0.0, 2.0, 0.1)


class TestRenderMap:
    def test_dimensions(self, grid):
        art = render_map(np.zeros(grid.shape), grid, width=40)
        lines = art.splitlines()
        assert len(lines[0]) == 42  # border + 40 + border
        assert lines[0].startswith("+")
        assert all(line.startswith(("|", "+")) for line in lines)

    def test_peak_rendered_bright(self, grid):
        values = np.zeros(grid.shape)
        row, col = grid.index_of(Point(2.0, 1.0))
        values[row - 1:row + 2, col - 1:col + 2] = 1.0
        art = render_map(values, grid, width=40)
        assert "@" in art

    def test_marker_drawn(self, grid):
        art = render_map(
            np.zeros(grid.shape), grid, width=40,
            markers=[(Point(2.0, 1.0), "X")],
        )
        assert "X" in art

    def test_marker_outside_ignored(self, grid):
        art = render_map(
            np.zeros(grid.shape), grid, width=40,
            markers=[(Point(99.0, 99.0), "X")],
        )
        assert "X" not in art

    def test_north_at_top(self, grid):
        values = np.zeros(grid.shape)
        values[grid.index_of(Point(2.0, 1.9))] = 1.0  # high y
        art = render_map(values, grid, width=40)
        lines = art.splitlines()[1:-1]
        bright_rows = [k for k, line in enumerate(lines) if "@" in line]
        assert bright_rows and bright_rows[0] < len(lines) / 2

    def test_shape_mismatch(self, grid):
        with pytest.raises(ConfigurationError):
            render_map(np.zeros((2, 2)), grid)

    def test_width_validation(self, grid):
        with pytest.raises(ConfigurationError):
            render_map(np.zeros(grid.shape), grid, width=4)


class TestRenderTestbed:
    def test_contains_anchors_and_clutter(self):
        art = render_testbed(vicon_testbed())
        assert "M" in art  # master
        assert art.count("A") >= 3  # the other anchors
        assert "#" in art  # reflectors
