"""Tests for repro.sdr.trace: capture (de)serialisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.sdr.iq import IqCapture
from repro.sdr.trace import load_captures, save_captures


def make_capture(seed=0):
    rng = np.random.default_rng(seed)
    return IqCapture(
        samples=rng.normal(size=(2, 50)) + 1j * rng.normal(size=(2, 50)),
        sample_rate=8e6,
        channel_index=seed % 37,
        carrier_frequency_hz=2.41e9,
        source=f"tag-{seed}",
        start_sample_offset=seed,
    )


class TestRoundtrip:
    def test_save_load(self, tmp_path):
        captures = [make_capture(0), make_capture(1)]
        path = tmp_path / "trace.npz"
        save_captures(path, captures)
        loaded = load_captures(path)
        assert len(loaded) == 2
        for original, restored in zip(captures, loaded):
            assert np.allclose(original.samples, restored.samples)
            assert restored.channel_index == original.channel_index
            assert restored.source == original.source
            assert restored.start_sample_offset == original.start_sample_offset

    def test_empty_list(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_captures(path, [])
        assert load_captures(path) == []

    def test_missing_file(self, tmp_path):
        with pytest.raises(MeasurementError):
            load_captures(tmp_path / "nope.npz")

    def test_not_a_trace(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(MeasurementError):
            load_captures(path)
