"""Tests for repro.sdr.frontend: the IQ-fidelity TX/RX chain."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ble.gfsk import GfskDemodulator
from repro.ble.localization import localization_pdu
from repro.ble.pdu import assemble_packet
from repro.rf.channel_model import ChannelSimulator
from repro.rf.environment import Environment
from repro.rf.imaging import ImagingConfig
from repro.rf.oscillator import Oscillator
from repro.sdr.frontend import RadioFrontEnd, apply_channel_frequency_domain
from repro.rf.antenna import Anchor
from repro.utils.geometry2d import Point

AA = 0x5A3B9C71


@pytest.fixture()
def front_end():
    env = Environment(width=6.0, height=5.0, origin=Point(-3.0, -2.0))
    simulator = ChannelSimulator(env)
    return RadioFrontEnd(channel_simulator=simulator, snr_db=60.0, rng=7)


def make_packet(channel=5):
    return assemble_packet(
        localization_pdu(channel),
        access_address=AA,
        channel_index=channel,
    )


class TestApplyChannel:
    def test_pure_delay_free_space(self):
        env = Environment(width=20.0, height=20.0, origin=Point(-10, -10))
        sim = ChannelSimulator(
            env, imaging=ImagingConfig(include_scatter=False, min_gain=0.05)
        )
        x = np.exp(2j * np.pi * 0.25e6 * np.arange(256) / 8e6)
        y = apply_channel_frequency_domain(
            x, sim, Point(0, 0), Point(2, 0), 2.44e9, 8e6
        )
        # Free space: output is a scaled/rotated copy of the input tone.
        ratio = y[32:-32] / x[32:-32]
        assert np.allclose(ratio, ratio[0], atol=1e-6)
        assert abs(ratio[0]) == pytest.approx(0.5, rel=1e-3)

    def test_empty_input(self, front_end):
        out = apply_channel_frequency_domain(
            np.array([], complex),
            front_end.channel_simulator,
            Point(0, 0),
            Point(1, 0),
            2.44e9,
            8e6,
        )
        assert out.size == 0


class TestTransmit:
    def test_capture_shape(self, front_end):
        packet = make_packet()
        anchor = Anchor(position=Point(2.5, 0.0), num_antennas=4)
        capture = front_end.transmit(
            packet,
            tx_position=Point(0, 0),
            rx_anchor=anchor,
            tx_oscillator=Oscillator(rng=1),
            rx_oscillator=Oscillator(rng=2),
        )
        expected = packet.num_bits * 8 + 2 * front_end.guard_symbols * 8
        assert capture.samples.shape == (4, expected)
        assert capture.channel_index == packet.channel_index

    def test_demodulable_at_high_snr(self, front_end):
        packet = make_packet()
        anchor = Anchor(position=Point(2.0, 0.5), num_antennas=1)
        capture = front_end.transmit(
            packet,
            tx_position=Point(-1, 0),
            rx_anchor=anchor,
            tx_oscillator=Oscillator(rng=3),
            rx_oscillator=Oscillator(rng=4),
        )
        guard = front_end.guard_symbols * 8
        demod = GfskDemodulator(samples_per_symbol=8)
        bits = demod.demodulate(
            capture.antenna(0)[guard:], packet.num_bits
        )
        errors = int(np.count_nonzero(bits != packet.bits))
        assert errors <= 1  # edge symbol may flip from filter transients

    def test_oscillator_offsets_rotate_capture(self, front_end):
        packet = make_packet()
        anchor = Anchor(position=Point(2.0, 0.5), num_antennas=1)
        tx1, rx1 = Oscillator(rng=10), Oscillator(rng=11)
        quiet = RadioFrontEnd(
            channel_simulator=front_end.channel_simulator,
            snr_db=200.0,
            rng=0,
        )
        first = quiet.transmit(
            packet, Point(0, 0), anchor, tx1, rx1
        ).antenna(0)
        tx1.retune()
        second = quiet.transmit(
            packet, Point(0, 0), anchor, tx1, rx1
        ).antenna(0)
        ratio = second[200:400] / first[200:400]
        # A pure phase rotation: constant unit-magnitude ratio.
        assert np.allclose(np.abs(ratio), 1.0, atol=1e-6)
        assert np.std(np.angle(ratio)) < 1e-6
        assert abs(np.angle(ratio[0])) > 1e-3

    def test_guard_validation(self, front_end):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            RadioFrontEnd(
                channel_simulator=front_end.channel_simulator,
                guard_symbols=-1,
            )
