"""Tests for repro.sdr.iq: the capture container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sdr.iq import IqCapture


def make_capture(num_antennas=2, num_samples=64):
    samples = np.arange(num_antennas * num_samples, dtype=float).reshape(
        num_antennas, num_samples
    ).astype(complex)
    return IqCapture(
        samples=samples,
        sample_rate=8e6,
        channel_index=5,
        carrier_frequency_hz=2.414e9,
        source="tag",
        start_sample_offset=10,
    )


class TestIqCapture:
    def test_shapes(self):
        capture = make_capture(3, 100)
        assert capture.num_antennas == 3
        assert capture.num_samples == 100
        assert capture.duration_s == pytest.approx(100 / 8e6)

    def test_1d_promoted_to_2d(self):
        capture = IqCapture(
            samples=np.zeros(16, complex),
            sample_rate=8e6,
            channel_index=0,
            carrier_frequency_hz=2.404e9,
        )
        assert capture.num_antennas == 1

    def test_invalid_sample_rate(self):
        with pytest.raises(ConfigurationError):
            IqCapture(
                samples=np.zeros((1, 4), complex),
                sample_rate=0,
                channel_index=0,
                carrier_frequency_hz=2.4e9,
            )

    def test_antenna_access(self):
        capture = make_capture()
        assert capture.antenna(1)[0] == 64

    def test_antenna_out_of_range(self):
        with pytest.raises(ConfigurationError):
            make_capture().antenna(2)

    def test_sliced_window_and_offset(self):
        capture = make_capture()
        part = capture.sliced(4, 20)
        assert part.num_samples == 16
        assert part.start_sample_offset == 6
        assert part.antenna(0)[0] == 4

    def test_sliced_bad_range(self):
        with pytest.raises(ConfigurationError):
            make_capture().sliced(10, 5)

    def test_power_dbfs(self):
        capture = IqCapture(
            samples=np.ones((1, 8), complex),
            sample_rate=8e6,
            channel_index=0,
            carrier_frequency_hz=2.4e9,
        )
        assert capture.power_dbfs() == pytest.approx(0.0)

    def test_power_of_silence(self):
        capture = IqCapture(
            samples=np.zeros((1, 8), complex),
            sample_rate=8e6,
            channel_index=0,
            carrier_frequency_hz=2.4e9,
        )
        assert capture.power_dbfs() == float("-inf")
