"""Tests for repro.sdr.receiver: correlation packet acquisition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ble.gfsk import GfskModulator
from repro.ble.localization import localization_pdu
from repro.ble.pdu import assemble_packet
from repro.errors import DemodulationError
from repro.rf.noise import add_awgn
from repro.sdr.iq import IqCapture
from repro.sdr.receiver import PacketDetector, verify_payload_bits

AA = 0x5A3B9C71


def make_capture(offset=100, snr_db=None, rng=None, channel=3):
    packet = assemble_packet(
        localization_pdu(channel), access_address=AA, channel_index=channel
    )
    modulator = GfskModulator()
    iq = modulator.modulate(packet.bits)
    stream = np.concatenate(
        [np.zeros(offset, complex), iq, np.zeros(50, complex)]
    )
    if snr_db is not None:
        stream = add_awgn(stream, snr_db, rng=rng)
    capture = IqCapture(
        samples=stream,
        sample_rate=modulator.sample_rate,
        channel_index=channel,
        carrier_frequency_hz=2.41e9,
    )
    return capture, packet


class TestDetect:
    def test_exact_offset_clean(self):
        capture, packet = make_capture(offset=137)
        detector = PacketDetector()
        start, quality = detector.detect(capture, packet)
        assert start == 137
        assert quality > 0.95

    def test_offset_with_noise(self):
        capture, packet = make_capture(offset=64, snr_db=10.0, rng=3)
        detector = PacketDetector()
        start, _ = detector.detect(capture, packet)
        assert abs(start - 64) <= 1

    def test_detection_with_phase_rotation(self):
        capture, packet = make_capture(offset=80)
        capture.samples = capture.samples * np.exp(1j * 2.1)
        start, quality = PacketDetector().detect(capture, packet)
        assert start == 80
        assert quality > 0.95

    def test_noise_only_raises(self, rng):
        capture, packet = make_capture(offset=0)
        noise_capture = IqCapture(
            samples=rng.normal(size=2000) + 1j * rng.normal(size=2000),
            sample_rate=8e6,
            channel_index=3,
            carrier_frequency_hz=2.41e9,
        )
        with pytest.raises(DemodulationError):
            PacketDetector().detect(noise_capture, packet)

    def test_capture_too_short(self):
        capture, packet = make_capture()
        tiny = capture.sliced(0, 100)
        with pytest.raises(DemodulationError):
            PacketDetector().detect(tiny, packet)


class TestAlign:
    def test_aligned_capture_starts_at_packet(self):
        capture, packet = make_capture(offset=99)
        aligned = PacketDetector().align(capture, packet)
        assert aligned.start_sample_offset == 0
        assert aligned.num_samples == packet.num_bits * 8

    def test_aligned_capture_verifies(self):
        capture, packet = make_capture(offset=42, snr_db=25.0, rng=5)
        aligned = PacketDetector().align(capture, packet)
        errors = verify_payload_bits(aligned, packet, max_bit_errors=2)
        assert errors <= 2

    def test_verify_rejects_garbage(self, rng):
        capture, packet = make_capture(offset=0)
        garbage = IqCapture(
            samples=np.exp(
                1j * rng.uniform(0, 2 * np.pi, capture.num_samples)
            ),
            sample_rate=8e6,
            channel_index=3,
            carrier_frequency_hz=2.41e9,
        )
        with pytest.raises(DemodulationError):
            verify_payload_bits(garbage, packet, max_bit_errors=0)
