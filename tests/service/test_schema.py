"""Schema layer: encode/decode round trips and typed validation errors."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.service.schema import (
    MAX_BODY_BYTES,
    SchemaError,
    decode_observations,
    encode_observations,
    error_body,
    parse_locate_request,
)


def _valid_body(observations) -> dict:
    return {
        "scenario": "vicon",
        "observations": encode_observations(observations),
    }


class TestParseLocateRequest:
    def test_valid_envelope(self, observations):
        body = _valid_body(observations)
        body["key"] = "tenant-1"
        request = parse_locate_request(json.dumps(body).encode())
        assert request.scenario == "vicon"
        assert request.api_key == "tenant-1"
        assert "tag_to_anchor" in request.observations

    def test_key_optional(self, observations):
        request = parse_locate_request(
            json.dumps(_valid_body(observations)).encode()
        )
        assert request.api_key is None

    @pytest.mark.parametrize(
        "raw",
        [
            b"{not json",
            b"",
            b"\xff\xfe",
            b"[1, 2, 3]",
            b'"just a string"',
        ],
    )
    def test_malformed_body_rejected(self, raw):
        with pytest.raises(SchemaError, match="body"):
            parse_locate_request(raw)

    def test_missing_scenario_rejected(self):
        with pytest.raises(SchemaError, match="scenario"):
            parse_locate_request(json.dumps({"observations": {}}).encode())

    def test_non_string_key_rejected(self, observations):
        body = _valid_body(observations)
        body["key"] = 42
        with pytest.raises(SchemaError, match="key"):
            parse_locate_request(json.dumps(body).encode())

    def test_missing_observations_rejected(self):
        with pytest.raises(SchemaError, match="observations"):
            parse_locate_request(json.dumps({"scenario": "vicon"}).encode())

    def test_oversized_body_rejected(self):
        raw = b"x" * (MAX_BODY_BYTES + 1)
        with pytest.raises(SchemaError, match="exceeds"):
            parse_locate_request(raw)


class TestObservationsCodec:
    def test_round_trip(self, testbed, observations):
        payload = encode_observations(observations)
        decoded = decode_observations(
            payload, testbed.anchors, testbed.master_index
        )
        np.testing.assert_allclose(
            decoded.tag_to_anchor, observations.tag_to_anchor
        )
        np.testing.assert_allclose(
            decoded.master_to_anchor, observations.master_to_anchor
        )
        np.testing.assert_allclose(
            decoded.frequencies_hz, observations.frequencies_hz
        )
        assert decoded.master_index == testbed.master_index

    def test_snr_round_trips_finite_values(self, testbed, observations):
        payload = encode_observations(observations)
        if observations.band_snr_db is None:
            pytest.skip("model produced no SNR annotations")
        decoded = decode_observations(
            payload, testbed.anchors, testbed.master_index
        )
        finite = np.isfinite(observations.band_snr_db)
        np.testing.assert_allclose(
            decoded.band_snr_db[finite],
            observations.band_snr_db[finite],
        )

    def test_wrong_shape_rejected(self, testbed, observations):
        payload = encode_observations(observations)
        payload["tag_to_anchor"] = payload["tag_to_anchor"][:-1]
        with pytest.raises(SchemaError, match="tag_to_anchor"):
            decode_observations(
                payload, testbed.anchors, testbed.master_index
            )

    def test_missing_field_rejected(self, testbed, observations):
        payload = encode_observations(observations)
        del payload["master_to_anchor"]
        with pytest.raises(SchemaError, match="master_to_anchor"):
            decode_observations(
                payload, testbed.anchors, testbed.master_index
            )

    def test_non_numeric_rejected(self, testbed, observations):
        payload = encode_observations(observations)
        payload["frequencies_hz"] = ["not", "numbers"]
        with pytest.raises(SchemaError, match="frequencies_hz"):
            decode_observations(
                payload, testbed.anchors, testbed.master_index
            )

    def test_non_finite_rejected(self, testbed, observations):
        payload = encode_observations(observations)
        payload["tag_to_anchor"][0][0][0][0] = float("nan")
        with pytest.raises(SchemaError, match="non-finite"):
            decode_observations(
                payload, testbed.anchors, testbed.master_index
            )


class TestErrorBody:
    def test_envelope_shape(self):
        body = error_body("rate_limited", "slow down", retry_after_s=1.5)
        assert body["error"]["code"] == "rate_limited"
        assert body["error"]["message"] == "slow down"
        assert body["error"]["retry_after_s"] == 1.5
