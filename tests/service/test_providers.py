"""Provider chain: quality gating and BLoc -> AoA -> RSSI degradation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import LocalizationError
from repro.service.providers import (
    PROVIDER_CHAIN_ORDER,
    LocateDecision,
    ProviderChain,
    QualityGates,
    assess_quality,
)
from repro.sim.interference import inject_band_outage


@pytest.fixture(scope="module")
def chain(service_pool):
    """The vicon scenario's provider chain from the shared warm pool."""
    return service_pool.get("vicon").chain


class TestAssessQuality:
    def test_clean_observations_have_full_coverage(self, observations):
        quality = assess_quality(observations)
        assert quality.band_coverage == pytest.approx(1.0)
        assert quality.worst_anchor_coverage == pytest.approx(1.0)
        assert quality.num_anchors == 4
        assert quality.num_bands == 37

    def test_outage_drops_worst_anchor_coverage(self, observations):
        degraded = inject_band_outage(
            observations, anchor_index=0, band_indices=list(range(30))
        )
        quality = assess_quality(degraded)
        assert quality.worst_anchor_coverage < 0.25
        # Overall coverage only loses 30 of 4*37 cells.
        assert quality.band_coverage > 0.7

    def test_to_dict_is_json_shaped(self, observations):
        as_dict = assess_quality(observations).to_dict()
        assert set(as_dict) == {
            "band_coverage",
            "worst_anchor_coverage",
            "num_anchors",
            "num_antennas",
            "num_bands",
        }


class TestProviderChain:
    def test_chain_order_constant(self):
        assert PROVIDER_CHAIN_ORDER == ("bloc", "aoa", "rssi")

    def test_clean_request_served_by_bloc(self, chain, observations):
        decision = chain.locate(observations)
        assert decision.provider == "bloc"
        assert decision.fallback_reasons == []

    def test_outage_falls_back_with_named_reason(
        self, chain, observations
    ):
        degraded = inject_band_outage(
            observations, anchor_index=0, band_indices=list(range(30))
        )
        decision = chain.locate(degraded)
        assert decision.provider in ("aoa", "rssi")
        assert any("bloc" in r for r in decision.fallback_reasons)

    def test_fallback_position_stays_in_room(self, chain, observations):
        degraded = inject_band_outage(
            observations, anchor_index=0, band_indices=list(range(30))
        )
        decision = chain.locate(degraded)
        assert -4.0 < decision.position.x < 4.0
        assert -3.0 < decision.position.y < 4.0

    def test_batch_is_order_preserving_and_mixed(
        self, chain, observations
    ):
        degraded = inject_band_outage(
            observations, anchor_index=0, band_indices=list(range(30))
        )
        outcomes = chain.locate_batch(
            [observations, degraded, observations]
        )
        assert len(outcomes) == 3
        assert all(isinstance(o, LocateDecision) for o in outcomes)
        assert outcomes[0].provider == "bloc"
        assert outcomes[1].provider in ("aoa", "rssi")
        assert outcomes[2].provider == "bloc"
        # Same clean input at both ends -> identical position.
        assert outcomes[0].position.x == outcomes[2].position.x

    def test_batch_matches_single_locate(self, chain, observations):
        batch = chain.locate_batch([observations])[0]
        single = chain.locate(observations)
        assert batch.provider == single.provider
        assert batch.position.x == pytest.approx(
            single.position.x, abs=1e-9
        )
        assert batch.position.y == pytest.approx(
            single.position.y, abs=1e-9
        )

    def test_gate_thresholds_are_configurable(self, chain, observations):
        strict = ProviderChain(
            bloc=chain.bloc,
            gates=QualityGates(min_band_coverage=1.01),
        )
        decision = strict.locate(observations)
        assert decision.provider != "bloc"
        assert any("gated" in r for r in decision.fallback_reasons)

    def test_all_providers_dead_is_contained_error(
        self, chain, observations
    ):
        # Zero every channel: no provider can produce a fix.
        dead = inject_band_outage(
            observations,
            anchor_index=0,
            band_indices=list(range(observations.num_bands)),
        )
        for anchor in range(1, observations.num_anchors):
            dead = inject_band_outage(
                dead,
                anchor_index=anchor,
                band_indices=list(range(observations.num_bands)),
            )
        outcomes = chain.locate_batch([dead])
        if isinstance(outcomes[0], LocateDecision):
            # The fallback baselines may still return a (meaningless)
            # fix from all-zero channels; what matters is that no
            # exception escaped and BLoc was gated out.
            assert outcomes[0].provider in ("aoa", "rssi")
            assert any(
                "bloc" in r for r in outcomes[0].fallback_reasons
            )
        else:
            assert isinstance(outcomes[0], LocalizationError)
