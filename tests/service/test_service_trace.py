"""End-to-end request tracing through the service.

Covers the telemetry pipeline's acceptance flow: a traceparent header in
-> the same trace id out (response body, header, access log); the span
tree of one request -- HTTP handler, batch wait, linked micro-batch,
provider chain, localizer stages -- reconstructable from an NDJSON
export; /metrics serving OpenMetrics whose latency histogram carries
exemplar trace ids that resolve against that export; and the
size-rotated access log.
"""

from __future__ import annotations

import http.client
import json
from typing import Dict, Tuple

import pytest

from repro.obs import (
    exemplar_trace_ids,
    export_ndjson,
    load_ndjson,
    observed,
    parse_exposition,
    render_trace,
    resolve_trace_id,
    trace_spans,
)
from repro.obs.trace import format_traceparent, new_trace_id
from repro.service import LocalizationService, ServiceConfig


def _post(
    host: str,
    port: int,
    body: bytes,
    headers: Dict[str, str] = None,
) -> Tuple[int, dict, Dict[str, str]]:
    connection = http.client.HTTPConnection(host, port, timeout=30.0)
    try:
        connection.request(
            "POST",
            "/v1/locate",
            body=body,
            headers={
                "Content-Type": "application/json",
                **(headers or {}),
            },
        )
        response = connection.getresponse()
        payload = json.loads(response.read().decode("utf-8"))
        response_headers = {
            k.lower(): v for k, v in response.getheaders()
        }
        return response.status, payload, response_headers
    finally:
        connection.close()


def _get(
    host: str, port: int, path: str
) -> Tuple[int, bytes, Dict[str, str]]:
    connection = http.client.HTTPConnection(host, port, timeout=30.0)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        headers = {k.lower(): v for k, v in response.getheaders()}
        return response.status, response.read(), headers
    finally:
        connection.close()


class TestTraceparentPropagation:
    def test_inbound_trace_id_echoed(self, live_server, locate_body):
        host, port = live_server
        trace_id = new_trace_id()
        status, payload, headers = _post(
            host,
            port,
            locate_body,
            headers={"traceparent": format_traceparent(trace_id, 7)},
        )
        assert status == 200
        assert payload["trace_id"] == trace_id
        assert trace_id in headers["traceparent"]

    def test_missing_header_mints_a_trace(
        self, live_server, locate_body
    ):
        host, port = live_server
        status, payload, headers = _post(host, port, locate_body)
        assert status == 200
        assert len(payload["trace_id"]) == 32
        assert payload["trace_id"] in headers["traceparent"]

    def test_malformed_header_starts_fresh(
        self, live_server, locate_body
    ):
        host, port = live_server
        status, payload, _ = _post(
            host,
            port,
            locate_body,
            headers={"traceparent": "zz-garbage"},
        )
        assert status == 200
        assert len(payload["trace_id"]) == 32

    def test_error_responses_carry_the_trace(self, live_server):
        host, port = live_server
        trace_id = new_trace_id()
        status, payload, headers = _post(
            host,
            port,
            b"{not json",
            headers={"traceparent": format_traceparent(trace_id)},
        )
        assert status == 400
        assert payload["trace_id"] == trace_id
        assert trace_id in headers["traceparent"]

    def test_health_and_stats_traced(self, live_server):
        host, port = live_server
        for path in ("/v1/health", "/v1/stats"):
            status, raw, headers = _get(host, port, path)
            assert status == 200
            payload = json.loads(raw.decode("utf-8"))
            assert payload["trace_id"] in headers["traceparent"]


class TestSpanTreeReconstruction:
    def test_request_tree_spans_threads_and_batch(
        self, live_server, locate_body, tmp_path
    ):
        host, port = live_server
        trace_id = new_trace_id()
        with observed() as obs:
            status, payload, _ = _post(
                host,
                port,
                locate_body,
                headers={
                    "traceparent": format_traceparent(trace_id)
                },
            )
            assert status == 200
            assert payload["trace_id"] == trace_id
            export_path = tmp_path / "trace.ndjson"
            export_ndjson(export_path, obs)
        records = load_ndjson(export_path)
        assert resolve_trace_id(records, trace_id[:12]) == trace_id
        selected = trace_spans(records, trace_id)
        names = {r["name"] for r in selected}
        # Handler -> batch wait on the request's own trace; the
        # micro-batch and the provider chain under it ride in via the
        # member_trace_ids link even though the batch worker thread
        # runs them on a trace of their own.
        assert {
            "service.locate",
            "service.batch_wait",
            "service.batch",
            "service.provider_chain",
        } <= names
        threads = {r["thread"] for r in selected}
        assert len(threads) >= 2  # handler thread + batch worker
        rendered = render_trace(records, trace_id)
        assert rendered.startswith(f"trace {trace_id}:")
        assert "service.batch" in rendered

    def test_metrics_exemplars_resolve_against_export(
        self, live_server, locate_body, tmp_path
    ):
        host, port = live_server
        trace_id = new_trace_id()
        with observed() as obs:
            status, _, _ = _post(
                host,
                port,
                locate_body,
                headers={
                    "traceparent": format_traceparent(trace_id)
                },
            )
            assert status == 200
            export_path = tmp_path / "trace.ndjson"
            export_ndjson(export_path, obs)
        status, raw, headers = _get(host, port, "/metrics")
        assert status == 200
        assert "openmetrics" in headers["content-type"]
        exposition = raw.decode("utf-8")
        families = parse_exposition(exposition)
        assert "service_request_latency_s" in families
        ids = exemplar_trace_ids(exposition)
        # The request just made is the histogram's latest observation,
        # so its trace id must be an exemplar somewhere...
        assert trace_id in ids
        # ...and that exemplar resolves against the span export (the
        # acceptance criterion's cross-check).
        records = load_ndjson(export_path)
        assert resolve_trace_id(records, trace_id) == trace_id


class TestMetricsEndpoint:
    def test_served_without_global_observer(
        self, live_server, locate_body
    ):
        # No observed() here: the service-local registry is always on.
        host, port = live_server
        _post(host, port, locate_body)
        status, raw, _ = _get(host, port, "/metrics")
        assert status == 200
        families = parse_exposition(raw.decode("utf-8"))
        requests_family = families["service_requests"]
        assert requests_family.type == "counter"
        assert requests_family.samples[0].value >= 1

    def test_stats_surface_cache_warmth_telemetry(
        self, live_server, locate_body
    ):
        host, port = live_server
        _post(host, port, locate_body)
        status, raw, _ = _get(host, port, "/v1/stats")
        assert status == 200
        payload = json.loads(raw.decode("utf-8"))
        cache = payload["cache"]
        assert cache["hits"] >= 1
        assert 0.0 <= cache["hit_ratio"] <= 1.0
        warmth = payload["pool"]["warmth"]
        assert warmth["vicon"] is True
        telemetry = payload["telemetry"]
        assert telemetry["fixes_recorded"] >= 1
        assert "anomalies_total" in telemetry


class TestAccessLogRotation:
    @pytest.fixture
    def logged_service(self, service_pool, tmp_path):
        path = tmp_path / "access.ndjson"
        service = LocalizationService(
            pool=service_pool,
            config=ServiceConfig(
                rate_per_s=10_000.0,
                burst=10_000,
                max_wait_s=0.002,
                access_log_path=str(path),
                access_log_max_bytes=600,
            ),
        )
        yield service, path
        service.close()

    def test_lines_carry_trace_ids_and_rotate(
        self, logged_service, locate_body
    ):
        service, path = logged_service
        trace_ids = []
        for _ in range(4):
            trace_id = new_trace_id()
            status, _, _ = service.handle_locate(
                locate_body,
                traceparent=format_traceparent(trace_id),
            )
            assert status == 200
            trace_ids.append(trace_id)
        rotated = path.with_name(path.name + ".1")
        assert rotated.exists()  # 4 lines cannot fit in 600 bytes
        lines = []
        for source in (rotated, path):
            lines += [
                json.loads(line)
                for line in source.read_text().splitlines()
            ]
        assert [r["trace_id"] for r in lines] == trace_ids
        assert all(r["status"] == 200 for r in lines)
