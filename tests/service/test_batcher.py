"""Micro-batcher: coalescing, per-future failure containment, close."""

from __future__ import annotations

import threading
import time
from typing import List, Sequence

import pytest

from repro.errors import LocalizationError, ReproError
from repro.service.batcher import MicroBatcher


class RecordingBatchFn:
    """A fake locate_batch that records the batches it was handed."""

    def __init__(self, delay_s: float = 0.0) -> None:
        self.batches: List[int] = []
        self.delay_s = delay_s
        self._lock = threading.Lock()

    def __call__(self, items: Sequence[object]) -> List[object]:
        if self.delay_s:
            time.sleep(self.delay_s)
        with self._lock:
            self.batches.append(len(items))
        return [("ok", item) for item in items]


def test_single_request_round_trips():
    fn = RecordingBatchFn()
    batcher = MicroBatcher(fn, max_batch=4, max_wait_s=0.001)
    try:
        outcome = batcher.locate("obs-1")
        assert outcome.decision == ("ok", "obs-1")
        assert outcome.batch_size == 1
    finally:
        batcher.close()


def test_concurrent_submits_coalesce():
    # Slow first batch so later submits pile up behind the worker.
    fn = RecordingBatchFn(delay_s=0.05)
    batcher = MicroBatcher(fn, max_batch=8, max_wait_s=0.02)
    try:
        futures = [batcher.submit(f"obs-{i}") for i in range(6)]
        outcomes = [f.result(timeout=5.0) for f in futures]
    finally:
        batcher.close()
    # Every caller got its own item back...
    for i, outcome in enumerate(outcomes):
        assert outcome.decision == ("ok", f"obs-{i}")
    # ...and at least one locate_batch call served multiple requests.
    assert max(fn.batches) > 1
    assert sum(fn.batches) == 6
    assert batcher.requests_total == 6
    assert batcher.largest_batch == max(fn.batches)


def test_max_batch_bounds_coalescing():
    fn = RecordingBatchFn(delay_s=0.05)
    batcher = MicroBatcher(fn, max_batch=2, max_wait_s=0.5)
    try:
        futures = [batcher.submit(i) for i in range(5)]
        for future in futures:
            future.result(timeout=5.0)
    finally:
        batcher.close()
    assert max(fn.batches) <= 2


def test_per_item_errors_stay_per_future():
    def flaky(items: Sequence[object]) -> List[object]:
        return [
            LocalizationError("bad fix") if item == "bad" else ("ok", item)
            for item in items
        ]

    batcher = MicroBatcher(flaky, max_batch=4, max_wait_s=0.01)
    try:
        good = batcher.submit("good")
        bad = batcher.submit("bad")
        assert good.result(timeout=5.0).decision == ("ok", "good")
        assert isinstance(
            bad.result(timeout=5.0).decision, LocalizationError
        )
    finally:
        batcher.close()


def test_batch_fn_exception_fails_all_futures():
    def broken(items: Sequence[object]) -> List[object]:
        raise ReproError("backend down")

    batcher = MicroBatcher(broken, max_batch=4, max_wait_s=0.01)
    try:
        future = batcher.submit("obs")
        with pytest.raises(ReproError, match="backend down"):
            future.result(timeout=5.0)
    finally:
        batcher.close()


def test_submit_after_close_rejected():
    batcher = MicroBatcher(RecordingBatchFn(), max_batch=2, max_wait_s=0.0)
    batcher.close()
    with pytest.raises(ReproError, match="closed"):
        batcher.submit("obs")


def test_close_is_idempotent():
    batcher = MicroBatcher(RecordingBatchFn(), max_batch=2, max_wait_s=0.0)
    batcher.close()
    batcher.close()


@pytest.mark.parametrize("max_batch,max_wait", [(0, 0.01), (1, -1.0)])
def test_invalid_parameters_rejected(max_batch, max_wait):
    with pytest.raises(ReproError):
        MicroBatcher(
            RecordingBatchFn(), max_batch=max_batch, max_wait_s=max_wait
        )


def test_info_shape():
    batcher = MicroBatcher(RecordingBatchFn(), max_batch=3, max_wait_s=0.01)
    try:
        batcher.locate("obs")
        info = batcher.info()
    finally:
        batcher.close()
    assert info["max_batch"] == 3
    assert info["requests_total"] == 1
    assert info["batches_total"] == 1
