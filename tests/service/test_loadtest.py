"""Loadtest driver: percentiles, bench-JSON shape, CLI smoke."""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.service.loadtest import (
    build_request_bodies,
    run_loadtest,
    update_bench_service_json,
)
from repro.service.schema import parse_locate_request


class TestBuildRequestBodies:
    def test_bodies_are_valid_locate_requests(self):
        bodies = build_request_bodies("vicon", count=2, seed=7)
        assert len(bodies) == 2
        for raw, truth in bodies:
            request = parse_locate_request(raw)
            assert request.scenario == "vicon"
            assert -3.0 <= truth.x <= 3.0

    def test_api_key_travels_in_envelope(self):
        (raw, _), = build_request_bodies(
            "vicon", count=1, seed=7, api_key="tenant"
        )
        assert parse_locate_request(raw).api_key == "tenant"

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ReproError, match="default scenarios"):
            build_request_bodies("warehouse-9", count=1)


class TestRunLoadtest:
    def test_against_live_server(self, live_server):
        host, port = live_server
        result = run_loadtest(
            host,
            port,
            scenario="vicon",
            clients=2,
            requests_per_client=2,
            seed=11,
        )
        assert result.requests == 4
        assert result.errors == 0
        assert 0 < result.p50_s <= result.p95_s <= result.p99_s
        assert result.throughput_rps > 0
        assert result.median_error_m is not None
        assert result.statuses.get("200") == 4
        assert sum(result.providers.values()) == 4

    def test_unreachable_server_raises(self):
        with pytest.raises(ReproError, match="no responses"):
            run_loadtest(
                "127.0.0.1",
                9,  # discard port: nothing listens there
                clients=1,
                requests_per_client=1,
                timeout_s=0.5,
            )


class TestBenchJson:
    def test_write_and_merge(self, tmp_path, live_server):
        host, port = live_server
        result = run_loadtest(
            host, port, clients=1, requests_per_client=2, seed=3
        )
        path = tmp_path / "BENCH_service.json"
        # Pre-existing foreign sections must survive the merge.
        path.write_text(json.dumps({"other_section": {"keep": 1}}))
        payload = update_bench_service_json(
            str(path),
            result,
            scenario="vicon",
            clients=1,
            grid_resolution_m=0.35,
        )
        on_disk = json.loads(path.read_text())
        assert on_disk == payload
        assert on_disk["benchmark"] == "service"
        assert on_disk["service"]["p95_s"] > 0
        assert on_disk["service"]["requests"] == 2
        assert on_disk["scenario"]["grid_resolution_m"] == 0.35
        assert on_disk["other_section"] == {"keep": 1}


class TestCliSmoke:
    def test_loadtest_self_host_cli(self, tmp_path, monkeypatch):
        from repro.__main__ import main

        bench = tmp_path / "BENCH_service.json"
        ledger = tmp_path / "runs.ndjson"
        status = main(
            [
                "loadtest",
                "--self-host",
                "--resolution",
                "0.5",
                "--clients",
                "2",
                "--per-client",
                "2",
                "--bench-out",
                str(bench),
                "--ledger",
                str(ledger),
            ]
        )
        assert status == 0
        payload = json.loads(bench.read_text())
        assert payload["service"]["p95_s"] > 0
        records = [
            json.loads(line)
            for line in ledger.read_text().splitlines()
            if line.strip()
        ]
        assert records, "loadtest must append a ledger RunRecord"
        results = records[-1]["results"]
        assert results["service.p95_s"] > 0
        assert results["service.requests"] == 4
