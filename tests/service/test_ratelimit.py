"""Token-bucket rate limiting with a fake clock."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.service.ratelimit import (
    ANONYMOUS_KEY,
    RateLimiter,
    TokenBucket,
)


class FakeClock:
    """A hand-advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_throttle(self):
        bucket = TokenBucket(rate_per_s=1.0, burst=3)
        decisions = [bucket.acquire(0.0) for _ in range(4)]
        assert [d.allowed for d in decisions] == [True, True, True, False]

    def test_retry_after_matches_deficit(self):
        bucket = TokenBucket(rate_per_s=2.0, burst=1)
        assert bucket.acquire(0.0).allowed
        denied = bucket.acquire(0.0)
        assert not denied.allowed
        # An empty bucket at 2 tokens/s refills one token in 0.5 s.
        assert denied.retry_after_s == pytest.approx(0.5)

    def test_refill_restores_tokens(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=1)
        assert bucket.acquire(0.0).allowed
        assert not bucket.acquire(0.0).allowed
        assert bucket.acquire(0.2).allowed  # 2 tokens' worth elapsed

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate_per_s=100.0, burst=2)
        bucket.acquire(0.0)
        # A long idle period must not bank more than `burst` tokens.
        decisions = [bucket.acquire(1000.0) for _ in range(3)]
        assert [d.allowed for d in decisions] == [True, True, False]

    @pytest.mark.parametrize("rate,burst", [(0.0, 1), (-1.0, 1), (1.0, 0)])
    def test_invalid_parameters_rejected(self, rate, burst):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate_per_s=rate, burst=burst)


class TestRateLimiter:
    def test_keys_get_independent_buckets(self):
        clock = FakeClock()
        limiter = RateLimiter(rate_per_s=1.0, burst=1, clock=clock)
        assert limiter.check("a").allowed
        assert limiter.check("b").allowed  # b's bucket is untouched
        assert not limiter.check("a").allowed

    def test_anonymous_requests_share_one_bucket(self):
        clock = FakeClock()
        limiter = RateLimiter(rate_per_s=1.0, burst=1, clock=clock)
        assert limiter.check(None).allowed
        assert not limiter.check("").allowed  # same ANONYMOUS_KEY bucket
        assert limiter.info()["keys"] == 1
        assert ANONYMOUS_KEY == "-"

    def test_refill_through_injected_clock(self):
        clock = FakeClock()
        limiter = RateLimiter(rate_per_s=2.0, burst=1, clock=clock)
        assert limiter.check("k").allowed
        assert not limiter.check("k").allowed
        clock.advance(0.6)
        assert limiter.check("k").allowed

    def test_allowlist(self):
        limiter = RateLimiter(api_keys=frozenset({"good"}))
        assert limiter.authorized("good")
        assert not limiter.authorized("bad")
        assert not limiter.authorized(None)
        assert limiter.info()["rejected_total"] == 2

    def test_no_allowlist_accepts_anything(self):
        limiter = RateLimiter()
        assert limiter.authorized(None)
        assert limiter.authorized("whoever")

    def test_counters(self):
        clock = FakeClock()
        limiter = RateLimiter(rate_per_s=1.0, burst=2, clock=clock)
        for _ in range(4):
            limiter.check("k")
        info = limiter.info()
        assert info["allowed_total"] == 2
        assert info["throttled_total"] == 2
