"""HTTP endpoint against a live ephemeral-port server.

Covers the ISSUE's error-path matrix: malformed JSON -> 400, unknown
scenario -> 404, exhausted token bucket -> 429 with Retry-After,
injected band outage -> fallback provider (not a 5xx), warm steering
cache reuse across requests, and micro-batched results matching the
serial chain.
"""

from __future__ import annotations

import http.client
import json
import threading
from typing import Dict, Optional, Tuple

import pytest

from repro.service import (
    LocalizationService,
    ServiceConfig,
    encode_observations,
    make_server,
)
from repro.sim.interference import inject_band_outage


def _post(
    host: str,
    port: int,
    body: bytes,
    path: str = "/v1/locate",
) -> Tuple[int, dict, Dict[str, str]]:
    connection = http.client.HTTPConnection(host, port, timeout=30.0)
    try:
        connection.request(
            "POST",
            path,
            body=body,
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        payload = json.loads(response.read().decode("utf-8"))
        headers = {k.lower(): v for k, v in response.getheaders()}
        return response.status, payload, headers
    finally:
        connection.close()


def _get(host: str, port: int, path: str) -> Tuple[int, dict]:
    connection = http.client.HTTPConnection(host, port, timeout=30.0)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


class TestLocateHappyPath:
    def test_locate_returns_position_and_provider(
        self, live_server, locate_body, tag_position
    ):
        host, port = live_server
        status, payload, _ = _post(host, port, locate_body)
        assert status == 200
        assert payload["provider"] == "bloc"
        assert payload["scenario"] == "vicon"
        position = payload["position"]
        # Coarse service grid: decimetres of quantisation are expected.
        assert abs(position["x"] - tag_position.x) < 1.0
        assert abs(position["y"] - tag_position.y) < 1.0
        assert payload["quality"]["band_coverage"] == pytest.approx(1.0)
        assert payload["fallback_reasons"] == []
        assert payload["latency_s"] > 0

    def test_second_request_hits_warm_steering_cache(
        self, live_server, locate_body, service_pool
    ):
        host, port = live_server
        status, _, _ = _post(host, port, locate_body)
        assert status == 200
        before = service_pool.engine.info()
        status, _, _ = _post(host, port, locate_body)
        assert status == 200
        after = service_pool.engine.info()
        # Warm path: the hit counter moves, nothing is rebuilt.
        assert after["hits"] > before["hits"]
        assert after["misses"] == before["misses"]
        assert after["entries"] == before["entries"]


class TestErrorPaths:
    def test_malformed_json_is_400(self, live_server):
        host, port = live_server
        status, payload, _ = _post(host, port, b"{definitely not json")
        assert status == 400
        assert payload["error"]["code"] == "invalid_request"
        assert payload["error"]["field"] == "body"

    def test_bad_shape_is_400(self, live_server, observations):
        host, port = live_server
        encoded = encode_observations(observations)
        encoded["tag_to_anchor"] = encoded["tag_to_anchor"][:-1]
        body = json.dumps(
            {"scenario": "vicon", "observations": encoded}
        ).encode()
        status, payload, _ = _post(host, port, body)
        assert status == 400
        assert "tag_to_anchor" in payload["error"]["field"]

    def test_unknown_scenario_is_404(self, live_server, observations):
        host, port = live_server
        body = json.dumps(
            {
                "scenario": "warehouse-9",
                "observations": encode_observations(observations),
            }
        ).encode()
        status, payload, _ = _post(host, port, body)
        assert status == 404
        assert payload["error"]["code"] == "unknown_scenario"
        assert "vicon" in payload["error"]["scenarios"]

    def test_unknown_route_is_404(self, live_server):
        host, port = live_server
        status, payload, _ = _post(host, port, b"{}", path="/v2/locate")
        assert status == 404
        status, payload = _get(host, port, "/nope")
        assert status == 404

    def test_empty_body_is_400(self, live_server):
        host, port = live_server
        status, payload, _ = _post(host, port, b"")
        assert status == 400


class TestRateLimiting:
    @pytest.fixture()
    def throttled_server(self, service_pool):
        """A server whose buckets hold 2 tokens and barely refill."""
        service = LocalizationService(
            pool=service_pool,
            config=ServiceConfig(
                rate_per_s=0.01, burst=2, max_wait_s=0.0
            ),
        )
        server = make_server(service, host="127.0.0.1", port=0)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        host, port = server.server_address[:2]
        yield str(host), int(port)
        server.shutdown()
        server.server_close()
        service.close()

    def test_exhaustion_yields_429_with_retry_after(
        self, throttled_server, locate_body
    ):
        host, port = throttled_server
        statuses = []
        retry_after: Optional[str] = None
        payload: dict = {}
        for _ in range(3):
            status, payload, headers = _post(host, port, locate_body)
            statuses.append(status)
            if status == 429:
                retry_after = headers.get("retry-after")
        assert statuses[:2] == [200, 200]
        assert statuses[2] == 429
        assert payload["error"]["code"] == "rate_limited"
        assert payload["error"]["retry_after_s"] > 0
        assert retry_after is not None and int(retry_after) >= 1

    def test_other_keys_unaffected_by_exhaustion(
        self, throttled_server, observations
    ):
        host, port = throttled_server

        def body_for(key: str) -> bytes:
            return json.dumps(
                {
                    "key": key,
                    "scenario": "vicon",
                    "observations": encode_observations(observations),
                }
            ).encode()

        for _ in range(3):
            status, _, _ = _post(host, port, body_for("hog"))
        assert status == 429
        status, _, _ = _post(host, port, body_for("patient"))
        assert status == 200


class TestAllowlist:
    @pytest.fixture()
    def allowlisted_service(self, service_pool):
        service = LocalizationService(
            pool=service_pool,
            config=ServiceConfig(
                api_keys=frozenset({"good"}), max_wait_s=0.0
            ),
        )
        yield service
        service.close()

    def test_unknown_key_is_401(
        self, allowlisted_service, observations
    ):
        body = json.dumps(
            {
                "key": "evil",
                "scenario": "vicon",
                "observations": encode_observations(observations),
            }
        ).encode()
        status, payload, _ = allowlisted_service.handle_locate(body)
        assert status == 401
        assert payload["error"]["code"] == "unauthorized"

    def test_listed_key_is_served(
        self, allowlisted_service, observations
    ):
        body = json.dumps(
            {
                "key": "good",
                "scenario": "vicon",
                "observations": encode_observations(observations),
            }
        ).encode()
        status, payload, _ = allowlisted_service.handle_locate(body)
        assert status == 200


class TestProviderFallbackOverHttp:
    def test_band_outage_degrades_not_500(
        self, live_server, observations
    ):
        host, port = live_server
        degraded = inject_band_outage(
            observations, anchor_index=0, band_indices=list(range(30))
        )
        body = json.dumps(
            {
                "scenario": "vicon",
                "observations": encode_observations(degraded),
            }
        ).encode()
        status, payload, _ = _post(host, port, body)
        assert status == 200
        assert payload["provider"] in ("aoa", "rssi")
        assert any(
            "bloc" in reason for reason in payload["fallback_reasons"]
        )


class TestMicroBatchEquivalence:
    def test_concurrent_requests_batch_and_match_serial(
        self, live_server, service_pool, observations
    ):
        host, port = live_server
        degraded = inject_band_outage(
            observations, anchor_index=1, band_indices=list(range(5))
        )
        bodies = [
            json.dumps(
                {
                    "scenario": "vicon",
                    "observations": encode_observations(obs),
                }
            ).encode()
            for obs in (observations, degraded, observations)
        ]
        results: Dict[int, Tuple[int, dict]] = {}
        lock = threading.Lock()

        def worker(index: int, body: bytes) -> None:
            status, payload, _ = _post(host, port, body)
            with lock:
                results[index] = (status, payload)

        threads = [
            threading.Thread(target=worker, args=(i, body))
            for i, body in enumerate(bodies)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(status == 200 for status, _ in results.values())
        # Concurrent identical inputs agree with the serial chain.
        chain = service_pool.get("vicon").chain
        serial = chain.locate(observations)
        for index in (0, 2):
            _, payload = results[index]
            assert payload["provider"] == serial.provider
            assert payload["position"]["x"] == pytest.approx(
                serial.position.x, abs=1e-6
            )
            assert payload["position"]["y"] == pytest.approx(
                serial.position.y, abs=1e-6
            )


class TestIntrospectionRoutes:
    def test_health(self, live_server):
        host, port = live_server
        status, payload = _get(host, port, "/v1/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert "vicon" in payload["scenarios"]

    def test_stats_expose_pool_limiter_batchers(
        self, live_server, locate_body
    ):
        host, port = live_server
        _post(host, port, locate_body)
        status, payload = _get(host, port, "/v1/stats")
        assert status == 200
        assert payload["responses_by_status"].get("200", 0) >= 1
        assert payload["pool"]["engine"]["entries"] >= 1
        assert "allowed_total" in payload["ratelimit"]
        assert "vicon" in payload["batchers"]
