"""Fixtures for the service tests: one warm pool, one live server.

The pool is session-scoped because warming a scenario builds a steering
cache entry (the expensive part); the grid is coarsened so the whole
service suite warms once in about a second.  Tests observe cache state
through deltas (hits before/after), so sharing the pool across tests is
safe.
"""

from __future__ import annotations

import json
import threading
from typing import Iterator, Tuple

import pytest

from repro.service import (
    LocalizationService,
    LocalizerPool,
    ServiceConfig,
    encode_observations,
    make_server,
)

#: Coarse service grid for tests: fast warmups, still a real pipeline.
TEST_RESOLUTION_M = 0.35


@pytest.fixture(scope="session")
def service_pool() -> LocalizerPool:
    """One warm pool shared by the whole service suite."""
    return LocalizerPool(grid_resolution_m=TEST_RESOLUTION_M)


@pytest.fixture(scope="session")
def service_app(
    service_pool: LocalizerPool,
) -> Iterator[LocalizationService]:
    """A service with generous rate limits (throttling tests build
    their own)."""
    service = LocalizationService(
        pool=service_pool,
        config=ServiceConfig(
            rate_per_s=10_000.0,
            burst=10_000,
            max_batch=8,
            max_wait_s=0.002,
        ),
    )
    yield service
    service.close()


@pytest.fixture(scope="session")
def live_server(
    service_app: LocalizationService,
) -> Iterator[Tuple[str, int]]:
    """The service bound on an ephemeral port, serving in a thread."""
    server = make_server(service_app, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield str(host), int(port)
    server.shutdown()
    server.server_close()


@pytest.fixture(scope="session")
def locate_body(observations) -> bytes:
    """A valid vicon locate body built from the shared observations."""
    return json.dumps(
        {
            "scenario": "vicon",
            "observations": encode_observations(observations),
        }
    ).encode("utf-8")
