"""Tests for repro.core.fusion: multi-round corrected-channel fusion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BlocConfig, BlocLocalizer, correct_phase_offsets
from repro.core.fusion import coherence_gain, fuse_rounds, locate_fused
from repro.errors import ConfigurationError, MeasurementError
from repro.sim import ChannelMeasurementModel
from repro.sim.testbed import open_room_testbed, vicon_testbed
from repro.utils.geometry2d import Point


@pytest.fixture(scope="module")
def noisy_model():
    return ChannelMeasurementModel(
        testbed=vicon_testbed(),
        seed=83,
        snr_db=12.0,  # deliberately poor: fusion has work to do
    )


@pytest.fixture(scope="module")
def rounds(noisy_model):
    tag = Point(0.5, 0.8)
    return [noisy_model.measure(tag, round_index=r) for r in range(8)]


class TestFuseRounds:
    def test_empty_rejected(self):
        with pytest.raises(MeasurementError):
            fuse_rounds([])

    def test_single_round_is_identity(self, rounds):
        fused = fuse_rounds(rounds[:1])
        direct = correct_phase_offsets(rounds[0])
        assert np.allclose(fused.alpha, direct.alpha)

    def test_mismatched_rounds_rejected(self, rounds):
        smaller = rounds[1].select_bands([0, 1, 2])
        with pytest.raises(MeasurementError):
            fuse_rounds([rounds[0], smaller])

    def test_corrected_channels_average_coherently(self, rounds):
        """The module's premise: corrected channels agree across rounds,
        so the fused magnitude barely drops."""
        gain = coherence_gain(rounds)
        assert gain > 0.75

    def test_raw_channels_do_not_average_coherently(self, rounds):
        """Averaging *raw* (offset-garbled) channels loses the signal."""
        raws = np.array([o.tag_to_anchor for o in rounds])
        fused = raws.mean(axis=0)
        single_power = float(np.mean(np.abs(raws) ** 2))
        fused_power = float(np.mean(np.abs(fused) ** 2))
        assert np.sqrt(fused_power / single_power) < 0.6

    def test_coherence_gain_needs_two(self, rounds):
        with pytest.raises(ConfigurationError):
            coherence_gain(rounds[:1])


class TestLocateFused:
    def test_fusion_beats_single_round(self, noisy_model):
        localizer = BlocLocalizer(config=BlocConfig(grid_resolution_m=0.08))
        tags = [Point(0.5, 0.8), Point(-0.9, 0.2), Point(1.3, -0.6),
                Point(-0.2, 1.5)]
        single_errors, fused_errors = [], []
        for t_index, tag in enumerate(tags):
            tag_rounds = [
                noisy_model.measure(tag, round_index=10 * t_index + r)
                for r in range(6)
            ]
            single = localizer.locate(tag_rounds[0], keep_map=False)
            fused = locate_fused(localizer, tag_rounds)
            single_errors.append((single.position - tag).norm())
            fused_errors.append((fused.position - tag).norm())
        assert np.median(fused_errors) <= np.median(single_errors) + 0.05

    def test_empty_rejected(self):
        with pytest.raises(MeasurementError):
            locate_fused(BlocLocalizer(), [])

    def test_keep_map(self, rounds):
        localizer = BlocLocalizer(config=BlocConfig(grid_resolution_m=0.1))
        result = locate_fused(localizer, rounds[:2], keep_map=True)
        assert result.likelihood is not None
