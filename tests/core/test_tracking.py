"""Tests for repro.core.tracking: the Kalman tag tracker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.tracking import TagTracker, track_errors_m
from repro.errors import ConfigurationError
from repro.utils.geometry2d import Point


def straight_line_truths(n=40, speed=1.0, dt=0.025):
    return [Point(0.2 * 0 + speed * dt * k, 0.5) for k in range(n)]


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"measurement_std_m": 0},
            {"acceleration_std": 0},
            {"gate_sigma": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            TagTracker(**kwargs)

    def test_invalid_dt(self):
        tracker = TagTracker()
        with pytest.raises(ConfigurationError):
            tracker.update(Point(0, 0), dt=0)


class TestFiltering:
    def test_first_fix_passes_through(self):
        tracker = TagTracker()
        state = tracker.update(Point(1.0, 2.0))
        assert state.position == Point(1.0, 2.0)
        assert not state.gated
        assert tracker.initialized

    def test_smoothing_reduces_noise(self, rng):
        truths = straight_line_truths()
        noisy = [
            Point(t.x + rng.normal(0, 0.3), t.y + rng.normal(0, 0.3))
            for t in truths
        ]
        tracker = TagTracker(measurement_std_m=0.3)
        states = tracker.track(noisy)
        raw_errors = np.array(
            [(f - t).norm() for f, t in zip(noisy, truths)]
        )
        filtered_errors = track_errors_m(states, truths)
        # Compare steady-state behaviour (skip the convergence phase).
        assert filtered_errors[10:].mean() < raw_errors[10:].mean()

    def test_velocity_estimated(self, rng):
        truths = straight_line_truths(speed=2.0)
        tracker = TagTracker(measurement_std_m=0.05)
        states = tracker.track(truths)
        assert states[-1].velocity.x == pytest.approx(2.0, abs=0.4)
        assert states[-1].velocity.y == pytest.approx(0.0, abs=0.2)

    def test_ghost_fix_gated(self):
        tracker = TagTracker(measurement_std_m=0.1, gate_sigma=3.0)
        for k in range(10):
            tracker.update(Point(0.025 * k, 0.0))
        ghost = tracker.update(Point(5.0, 5.0))
        assert ghost.gated
        # The filtered position coasts near the prediction, not the ghost.
        assert ghost.position.x < 1.0

    def test_consistent_fixes_not_gated(self):
        tracker = TagTracker(measurement_std_m=0.3)
        states = tracker.track(straight_line_truths())
        assert not any(s.gated for s in states)

    def test_reset(self):
        tracker = TagTracker()
        tracker.update(Point(1, 1))
        tracker.reset()
        assert not tracker.initialized
        assert tracker.history == []


class TestErrors:
    def test_track_errors_shape(self):
        tracker = TagTracker()
        truths = straight_line_truths(n=5)
        states = tracker.track(truths)
        errors = track_errors_m(states, truths)
        assert errors.shape == (5,)

    def test_count_mismatch(self):
        tracker = TagTracker()
        states = tracker.track(straight_line_truths(n=3))
        with pytest.raises(ConfigurationError):
            track_errors_m(states, straight_line_truths(n=4))
