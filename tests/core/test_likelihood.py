"""Tests for repro.core.likelihood: Eq. 17 over the 2-D grid."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import SPEED_OF_LIGHT
from repro.core.correction import CorrectedChannels, anchor_baselines
from repro.core.likelihood import (
    anchor_likelihood_flat,
    compute_likelihood_map,
)
from repro.errors import ConfigurationError
from repro.rf.antenna import Anchor
from repro.utils.geometry2d import Point, distance
from repro.utils.gridmap import Grid2D


def synthetic_corrected(tag: Point, anchors, master_index=0, num_bands=37):
    """Corrected channels for an ideal single-path world: exactly Eq. 14."""
    freqs = 2.404e9 + 2e6 * np.arange(num_bands)
    baselines = anchor_baselines(anchors, master_index)
    reference = anchors[master_index].antenna_position(0)
    d00 = distance(tag, reference)
    num_antennas = anchors[0].num_antennas
    alpha = np.zeros((len(anchors), num_antennas, num_bands), complex)
    for i, anchor in enumerate(anchors):
        for j in range(num_antennas):
            d_ij = distance(tag, anchor.antenna_position(j))
            relative = d_ij - d00 - baselines[i]
            alpha[i, j] = np.exp(
                -2j * np.pi * freqs * relative / SPEED_OF_LIGHT
            )
    return CorrectedChannels(
        anchors=list(anchors),
        master_index=master_index,
        frequencies_hz=freqs,
        alpha=alpha,
        anchor_baselines_m=baselines,
    )


@pytest.fixture()
def anchors():
    return [
        Anchor(position=Point(0.0, -2.4), boresight_rad=np.pi / 2, name="S"),
        Anchor(position=Point(2.9, 0.0), boresight_rad=np.pi, name="E"),
        Anchor(position=Point(0.0, 2.4), boresight_rad=-np.pi / 2, name="N"),
        Anchor(position=Point(-2.9, 0.0), boresight_rad=0.0, name="W"),
    ]


@pytest.fixture()
def grid():
    return Grid2D(-3.0, 3.0, -2.5, 2.5, 0.1)


class TestAnchorLikelihood:
    def test_peak_at_tag_in_ideal_world(self, anchors, grid):
        tag = Point(0.8, -0.4)
        corrected = synthetic_corrected(tag, anchors)
        points = grid.points()
        reference = corrected.master_reference_position().as_array()
        refdist = np.linalg.norm(points - reference[None, :], axis=1)
        flat = anchor_likelihood_flat(corrected, 1, points, refdist)
        best = points[int(np.argmax(flat))]
        assert np.hypot(best[0] - tag.x, best[1] - tag.y) < 0.3

    def test_values_non_negative(self, anchors, grid):
        corrected = synthetic_corrected(Point(0, 0), anchors)
        points = grid.points()
        reference = corrected.master_reference_position().as_array()
        refdist = np.linalg.norm(points - reference[None, :], axis=1)
        flat = anchor_likelihood_flat(corrected, 2, points, refdist)
        assert np.all(flat >= 0)


class TestCombinedMap:
    def test_combined_peak_at_tag(self, anchors, grid):
        tag = Point(-1.1, 0.7)
        corrected = synthetic_corrected(tag, anchors)
        result = compute_likelihood_map(corrected, grid)
        row, col = np.unravel_index(
            int(np.argmax(result.combined)), result.combined.shape
        )
        best = grid.point_at(int(row), int(col))
        assert (best - tag).norm() < 0.2

    def test_per_anchor_maps_normalised(self, anchors, grid):
        corrected = synthetic_corrected(Point(0.5, 0.5), anchors)
        result = compute_likelihood_map(corrected, grid)
        assert len(result.per_anchor) == 4
        for m in result.per_anchor:
            assert m.max() == pytest.approx(1.0)

    def test_combined_bounded_by_anchor_count(self, anchors, grid):
        corrected = synthetic_corrected(Point(0.5, 0.5), anchors)
        result = compute_likelihood_map(corrected, grid)
        assert result.combined.max() <= 4.0 + 1e-9

    def test_anchor_weights(self, anchors, grid):
        corrected = synthetic_corrected(Point(0.5, 0.5), anchors)
        weighted = compute_likelihood_map(
            corrected, grid, anchor_weights=np.array([1.0, 0.0, 0.0, 0.0])
        )
        assert np.allclose(weighted.combined, weighted.per_anchor[0])

    def test_bad_weights_length(self, anchors, grid):
        corrected = synthetic_corrected(Point(0.5, 0.5), anchors)
        with pytest.raises(ConfigurationError):
            compute_likelihood_map(
                corrected, grid, anchor_weights=np.ones(2)
            )

    def test_master_map_is_angle_cone(self, anchors, grid):
        """The master anchor's own map constrains angle, not range: the
        likelihood stays high along the ray from the master through the
        tag, beyond the tag itself."""
        tag = Point(0.0, 0.6)
        corrected = synthetic_corrected(tag, anchors)
        result = compute_likelihood_map(corrected, grid)
        master_map = result.per_anchor[0]
        # Points along the master->tag ray (x = 0 vertical line).
        at_tag = master_map[grid.index_of(tag)]
        beyond = master_map[grid.index_of(Point(0.0, 1.8))]
        assert at_tag > 0.8
        assert beyond > 0.6

    def test_normalized_helper(self, anchors, grid):
        corrected = synthetic_corrected(Point(0.5, 0.5), anchors)
        result = compute_likelihood_map(corrected, grid)
        assert result.normalized().max() == pytest.approx(1.0)
        assert result.num_anchors == 4
