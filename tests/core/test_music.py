"""Tests for repro.core.music: subspace angle estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import SPEED_OF_LIGHT
from repro.core.music import (
    array_covariance,
    estimate_num_sources,
    music_angles,
    music_spectrum,
)
from repro.errors import ConfigurationError

SPACING = 0.0614
FREQ = 2.44e9


def steering(theta_rad, num_antennas=4, f=FREQ):
    wavelength = SPEED_OF_LIGHT / f
    j = np.arange(num_antennas)
    return np.exp(2j * np.pi * j * SPACING * np.sin(theta_rad) / wavelength)


def snapshots(thetas, amplitudes, num_snapshots=64, noise=0.05, seed=0):
    """Multi-snapshot data with per-snapshot random source phases."""
    rng = np.random.default_rng(seed)
    num_antennas = 4
    out = np.zeros((num_antennas, num_snapshots), complex)
    for theta, amplitude in zip(thetas, amplitudes):
        a = steering(theta, num_antennas)
        phases = rng.uniform(0, 2 * np.pi, num_snapshots)
        out += amplitude * np.outer(a, np.exp(1j * phases))
    out += noise * (
        rng.normal(size=out.shape) + 1j * rng.normal(size=out.shape)
    )
    return out


class TestCovariance:
    def test_hermitian(self):
        h = snapshots([0.3], [1.0])
        covariance = array_covariance(h)
        assert np.allclose(covariance, covariance.conj().T)

    def test_psd(self):
        h = snapshots([0.3, -0.5], [1.0, 0.7])
        eigenvalues = np.linalg.eigvalsh(array_covariance(h))
        assert np.all(eigenvalues > -1e-12)

    def test_single_snapshot_accepted(self):
        covariance = array_covariance(steering(0.2).reshape(-1, 1))
        assert covariance.shape == (4, 4)


class TestModelOrder:
    def test_one_source(self):
        covariance = array_covariance(snapshots([0.4], [1.0]))
        assert estimate_num_sources(covariance) == 1

    def test_two_sources(self):
        covariance = array_covariance(
            snapshots([-0.6, 0.5], [1.0, 0.9], num_snapshots=256)
        )
        assert estimate_num_sources(covariance) == 2


class TestSpectrum:
    @pytest.mark.parametrize("theta_deg", [-45, -10, 0, 25, 60])
    def test_single_source_peak(self, theta_deg):
        theta = np.radians(theta_deg)
        h = snapshots([theta], [1.0])
        angles, spectrum = music_spectrum(h, SPACING, FREQ, num_sources=1)
        peak = np.degrees(angles[int(np.argmax(spectrum))])
        assert peak == pytest.approx(theta_deg, abs=2.0)

    def test_resolves_closely_spaced_sources(self):
        """The super-resolution property: two sources 18 deg apart,
        inside the 4-element beamwidth, are separated."""
        thetas = [np.radians(-9), np.radians(9)]
        h = snapshots(thetas, [1.0, 1.0], num_snapshots=256, noise=0.02)
        estimated = np.degrees(
            np.sort(music_angles(h, SPACING, FREQ, num_sources=2))
        )
        assert estimated[0] == pytest.approx(-9, abs=3.5)
        assert estimated[1] == pytest.approx(9, abs=3.5)

    def test_normalised(self):
        h = snapshots([0.2], [1.0])
        _, spectrum = music_spectrum(h, SPACING, FREQ, num_sources=1)
        assert spectrum.max() == pytest.approx(1.0)

    def test_too_few_antennas(self):
        with pytest.raises(ConfigurationError):
            music_spectrum(np.ones(1, complex), SPACING, FREQ)

    def test_invalid_num_sources(self):
        h = snapshots([0.2], [1.0])
        with pytest.raises(ConfigurationError):
            music_spectrum(h, SPACING, FREQ, num_sources=4)


class TestBaselineIntegration:
    def test_music_mode_locates(self, clean_observations):
        from repro.baselines import AoaLocalizer

        result = AoaLocalizer(spectrum_method="music").locate(
            clean_observations
        )
        error = (result.position - clean_observations.ground_truth).norm()
        assert error < 1.0

    def test_invalid_method_rejected(self):
        from repro.baselines import AoaLocalizer

        with pytest.raises(ConfigurationError):
            AoaLocalizer(spectrum_method="esprit")
