"""Tests for repro.core.scoring: the Eq. 18 direct-path score."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.peaks import Peak
from repro.core.scoring import (
    ScoringConfig,
    score_peaks,
    select_direct_path,
)
from repro.errors import ConfigurationError, LocalizationError
from repro.rf.antenna import Anchor
from repro.utils.geometry2d import Point
from repro.utils.gridmap import Grid2D


@pytest.fixture()
def grid():
    return Grid2D(0.0, 4.0, 0.0, 4.0, 0.1)


@pytest.fixture()
def anchors():
    return [
        Anchor(position=Point(0.0, 0.0), name="A"),
        Anchor(position=Point(4.0, 0.0), name="B"),
    ]


def peak_at(grid, x, y, value):
    row, col = grid.index_of(Point(x, y))
    return Peak(row=row, col=col, position=grid.point_at(row, col), value=value)


def bump_map(grid, centres_heights, sigma=0.15):
    points = grid.points()
    total = np.zeros(points.shape[0])
    for (cx, cy), height in centres_heights:
        d2 = (points[:, 0] - cx) ** 2 + (points[:, 1] - cy) ** 2
        total += height * np.exp(-d2 / (2 * sigma**2))
    return grid.reshape(total)


class TestScore:
    def test_likelihood_dominates_all_else_equal(self, grid, anchors):
        values = bump_map(grid, [((1.0, 2.0), 1.0), ((3.0, 2.0), 0.6)])
        peaks = [peak_at(grid, 1.0, 2.0, 1.0), peak_at(grid, 3.0, 2.0, 0.6)]
        scored = score_peaks(peaks, values, grid, anchors)
        # Symmetric geometry (same sum of anchor distances): the higher
        # peak must win.
        assert scored[0].peak.position.x == pytest.approx(1.0, abs=0.05)

    def test_distance_term_prefers_closer(self, grid, anchors):
        # Equal peaks; one implies much longer travelled paths.
        values = bump_map(grid, [((2.0, 0.5), 1.0), ((2.0, 3.5), 1.0)])
        peaks = [peak_at(grid, 2.0, 0.5, 1.0), peak_at(grid, 2.0, 3.5, 1.0)]
        scored = score_peaks(
            peaks, values, grid, anchors,
            ScoringConfig(distance_weight=0.3, entropy_weight=0.0),
        )
        assert scored[0].peak.position.y == pytest.approx(0.5, abs=0.05)

    def test_entropy_term_prefers_peaky(self, grid, anchors):
        values = bump_map(grid, [((1.0, 2.0), 1.0)], sigma=0.08) + bump_map(
            grid, [((3.0, 2.0), 1.0)], sigma=1.2
        )
        peaks = [
            peak_at(grid, 1.0, 2.0, float(values[grid.index_of(Point(1, 2))])),
            peak_at(grid, 3.0, 2.0, float(values[grid.index_of(Point(3, 2))])),
        ]
        scored = score_peaks(
            peaks, values, grid, anchors,
            ScoringConfig(distance_weight=0.0, entropy_weight=0.5),
        )
        assert scored[0].peak.position.x == pytest.approx(1.0, abs=0.05)

    def test_scores_sorted_descending(self, grid, anchors):
        values = bump_map(
            grid, [((1.0, 1.0), 1.0), ((3.0, 3.0), 0.8), ((2.0, 2.0), 0.5)]
        )
        peaks = [
            peak_at(grid, 1.0, 1.0, 1.0),
            peak_at(grid, 3.0, 3.0, 0.8),
            peak_at(grid, 2.0, 2.0, 0.5),
        ]
        scored = score_peaks(peaks, values, grid, anchors)
        assert all(
            a.score >= b.score for a, b in zip(scored, scored[1:])
        )

    def test_breakdown_fields(self, grid, anchors):
        values = bump_map(grid, [((2.0, 2.0), 1.0)])
        scored = score_peaks(
            [peak_at(grid, 2.0, 2.0, 1.0)], values, grid, anchors
        )
        entry = scored[0]
        expected_sum = (
            Point(2.0, 2.0) - anchors[0].position
        ).norm() + (Point(2.0, 2.0) - anchors[1].position).norm()
        assert entry.distance_sum_m == pytest.approx(expected_sum, abs=0.1)
        assert entry.entropy >= 0.0
        assert entry.score > 0.0

    def test_empty_peaks_raises(self, grid, anchors):
        with pytest.raises(LocalizationError):
            score_peaks([], np.ones(grid.shape), grid, anchors)

    def test_select_direct_path(self, grid, anchors):
        values = bump_map(grid, [((1.0, 1.0), 1.0), ((3.0, 3.0), 0.4)])
        scored = score_peaks(
            [peak_at(grid, 1.0, 1.0, 1.0), peak_at(grid, 3.0, 3.0, 0.4)],
            values, grid, anchors,
        )
        assert select_direct_path(scored) is scored[0]

    def test_select_from_empty_raises(self):
        with pytest.raises(LocalizationError):
            select_direct_path([])

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ScoringConfig(entropy_window=6)
