"""Tests for repro.core.engine: the steering-matrix cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BlocLocalizer,
    EngineConfig,
    SteeringCache,
    build_steering_entry,
    compute_likelihood_map,
    correct_phase_offsets,
)
from repro.core.engine import _lattice_steps
from repro.errors import ConfigurationError
from repro.sim import ChannelMeasurementModel, build_dataset, evaluate
from repro.sim.testbed import open_room_testbed
from repro.utils.geometry2d import Point
from repro.utils.gridmap import Grid2D


@pytest.fixture(scope="module")
def observations():
    model = ChannelMeasurementModel(testbed=open_room_testbed(), seed=7)
    return model.measure(Point(0.4, -0.3))


@pytest.fixture(scope="module")
def corrected(observations):
    return correct_phase_offsets(observations)


@pytest.fixture(scope="module")
def grid():
    return Grid2D(-2.0, 2.0, -1.5, 1.5, 0.1)


class TestEngineConfig:
    def test_rejects_bad_block_size(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(block_size=0)

    def test_rejects_bad_max_entries(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(max_entries=0)


class TestLatticeDetection:
    def test_uniform_plan_is_a_lattice(self):
        wn = np.linspace(1.0, 2.0, 11)
        base, multiples = _lattice_steps(wn)
        assert base == pytest.approx(0.1)
        assert list(multiples) == [1] * 10

    def test_ble_plan_with_advertising_gap(self):
        # 2 MHz lattice with one 4 MHz hole, like the BLE data channels.
        freqs = np.array([0.0, 2.0, 4.0, 8.0, 10.0])
        base, multiples = _lattice_steps(freqs)
        assert base == pytest.approx(2.0)
        assert list(multiples) == [1, 1, 2, 1]

    def test_irrational_spacing_is_not_a_lattice(self):
        assert _lattice_steps(np.array([0.0, 1.0, 1.0 + np.pi])) is None

    def test_single_band_has_no_lattice(self):
        assert _lattice_steps(np.array([2.4e9])) is None


class TestCachedMapMatchesDirect:
    def test_allclose_to_direct_path(self, corrected, grid):
        cache = SteeringCache()
        direct = compute_likelihood_map(corrected, grid)
        cached = compute_likelihood_map(corrected, grid, engine=cache)
        assert np.allclose(direct.combined, cached.combined)
        for a, b in zip(direct.per_anchor, cached.per_anchor):
            assert np.allclose(a, b)

    def test_locate_matches_direct_path(self, observations):
        with_engine = BlocLocalizer().locate(observations, keep_map=False)
        without = BlocLocalizer(engine=None).locate(
            observations, keep_map=False
        )
        assert with_engine.position.x == pytest.approx(
            without.position.x, abs=1e-9
        )
        assert with_engine.position.y == pytest.approx(
            without.position.y, abs=1e-9
        )

    def test_non_lattice_band_plan_builds_densely(self, grid, corrected):
        entry = build_steering_entry(
            grid,
            corrected.anchors,
            corrected.master_index,
            corrected.anchor_baselines_m,
            # Deliberately off-lattice spacings.
            np.array([2.40e9, 2.41e9, 2.41e9 + 1.7e6]),
        )
        assert not entry.used_lattice


class TestBlockwiseBuild:
    def test_chunking_is_exact_at_boundaries(self, corrected, grid):
        # A block size that does not divide the grid exercises a ragged
        # final chunk; the result must be bitwise identical to a build
        # with one giant block.
        one_block = build_steering_entry(
            grid,
            corrected.anchors,
            corrected.master_index,
            corrected.anchor_baselines_m,
            corrected.frequencies_hz,
            EngineConfig(block_size=10**9),
        )
        chunked = build_steering_entry(
            grid,
            corrected.anchors,
            corrected.master_index,
            corrected.anchor_baselines_m,
            corrected.frequencies_hz,
            EngineConfig(block_size=7),
        )
        assert one_block.matrices.keys() == chunked.matrices.keys()
        for key in one_block.matrices:
            assert np.array_equal(
                one_block.matrices[key], chunked.matrices[key]
            )

    def test_recurrence_matches_dense_exp(self, corrected, grid):
        from repro.constants import SPEED_OF_LIGHT

        entry = build_steering_entry(
            grid,
            corrected.anchors,
            corrected.master_index,
            corrected.anchor_baselines_m,
            corrected.frequencies_hz,
        )
        assert entry.used_lattice
        points = grid.points()
        wavenumbers = (
            2.0 * np.pi * corrected.frequencies_hz / SPEED_OF_LIGHT
        )
        reference = corrected.master_reference_position().as_array()
        refd = np.linalg.norm(points - reference[None, :], axis=1)
        anchor = corrected.anchors[1]
        element = anchor.antenna_position(2).as_array()
        relative = (
            np.linalg.norm(points - element[None, :], axis=1)
            - refd
            - float(corrected.anchor_baselines_m[1])
        )
        dense = np.exp(1j * np.outer(relative, wavenumbers))
        assert np.allclose(entry.matrices[(1, 2)], dense)


class TestCacheKeying:
    def test_repeat_lookup_hits(self, corrected, grid):
        cache = SteeringCache()
        first = cache.entry_for(corrected, grid)
        second = cache.entry_for(corrected, grid)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1
        assert len(cache) == 1

    def test_grid_change_invalidates(self, corrected, grid):
        cache = SteeringCache()
        cache.entry_for(corrected, grid)
        cache.entry_for(corrected, grid.coarsened(2))
        assert cache.misses == 2
        assert len(cache) == 2

    def test_frequency_change_invalidates(self, observations, grid):
        cache = SteeringCache()
        cache.entry_for(correct_phase_offsets(observations), grid)
        narrower = observations.select_bandwidth(20e6)
        cache.entry_for(correct_phase_offsets(narrower), grid)
        assert cache.misses == 2

    def test_geometry_change_invalidates(self, observations, grid):
        cache = SteeringCache()
        cache.entry_for(correct_phase_offsets(observations), grid)
        # Truncating the arrays keeps the kept elements' physical
        # positions but drops one, changing the antenna geometry.
        truncated = observations.select_antennas(3)
        cache.entry_for(correct_phase_offsets(truncated), grid)
        assert cache.misses == 2

    def test_lru_eviction(self, corrected, grid):
        cache = SteeringCache(EngineConfig(max_entries=1))
        cache.entry_for(corrected, grid)
        cache.entry_for(corrected, grid.coarsened(2))
        assert len(cache) == 1
        assert cache.evictions == 1
        # The first grid was evicted: looking it up again is a miss.
        cache.entry_for(corrected, grid)
        assert cache.misses == 3

    def test_info_reports_bytes(self, corrected, grid):
        cache = SteeringCache()
        assert cache.info()["bytes"] == 0
        cache.entry_for(corrected, grid)
        info = cache.info()
        assert info["entries"] == 1
        assert info["bytes"] == cache.nbytes > 0


class TestEngineObservability:
    def test_cache_metrics_recorded(self, corrected, grid):
        from repro.obs import observed

        with observed() as obs:
            cache = SteeringCache()
            cache.entry_for(corrected, grid)
            cache.entry_for(corrected, grid)
        assert obs.metrics.get("engine.cache_misses").value == 1
        assert obs.metrics.get("engine.cache_hits").value == 1
        assert obs.metrics.get("engine.build_s").count == 1


class TestParallelEvaluationWithSharedCache:
    def test_workers_share_one_cache_and_match_serial(self):
        dataset = build_dataset(
            open_room_testbed(), num_positions=4, seed=5
        )
        serial = evaluate(BlocLocalizer(), dataset, label="serial")
        parallel_localizer = BlocLocalizer()
        parallel = evaluate(
            parallel_localizer, dataset, label="parallel", workers=4
        )
        assert [r.error_m for r in serial.records] == [
            r.error_m for r in parallel.records
        ]
        # One geometry across the whole sweep: a single build, shared by
        # every worker thread.
        assert parallel_localizer.engine.misses == 1
        assert parallel_localizer.engine.hits == len(dataset) - 1
