"""Tests for repro.core.peaks: local-maximum detection and refinement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.peaks import Peak, PeakConfig, find_peaks, refine_peak_position
from repro.errors import ConfigurationError, LocalizationError
from repro.utils.geometry2d import Point
from repro.utils.gridmap import Grid2D


@pytest.fixture()
def grid():
    return Grid2D(0.0, 4.0, 0.0, 4.0, 0.1)


def gaussian_bump(grid, centre, height=1.0, sigma=0.2):
    points = grid.points()
    d2 = (points[:, 0] - centre[0]) ** 2 + (points[:, 1] - centre[1]) ** 2
    return grid.reshape(height * np.exp(-d2 / (2 * sigma**2)))


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"neighborhood": 2},
            {"neighborhood": 4},
            {"min_relative_value": 1.5},
            {"min_separation_m": -1},
            {"max_peaks": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            PeakConfig(**kwargs)


class TestFindPeaks:
    def test_single_bump(self, grid):
        values = gaussian_bump(grid, (2.0, 3.0))
        peaks = find_peaks(values, grid)
        assert len(peaks) == 1
        assert (peaks[0].position - Point(2.0, 3.0)).norm() < 0.1

    def test_two_bumps_sorted_by_value(self, grid):
        values = gaussian_bump(grid, (1.0, 1.0), height=1.0) + gaussian_bump(
            grid, (3.0, 3.0), height=0.7
        )
        peaks = find_peaks(values, grid)
        assert len(peaks) == 2
        assert peaks[0].value > peaks[1].value
        assert (peaks[0].position - Point(1.0, 1.0)).norm() < 0.1

    def test_weak_bump_pruned(self, grid):
        values = gaussian_bump(grid, (1.0, 1.0), height=1.0) + gaussian_bump(
            grid, (3.0, 3.0), height=0.1
        )
        peaks = find_peaks(
            values, grid, PeakConfig(min_relative_value=0.35)
        )
        assert len(peaks) == 1

    def test_min_separation_merges(self, grid):
        values = gaussian_bump(grid, (2.0, 2.0)) + gaussian_bump(
            grid, (2.25, 2.0), height=0.9
        )
        peaks = find_peaks(
            values, grid, PeakConfig(min_separation_m=0.5)
        )
        assert len(peaks) == 1

    def test_max_peaks_cap(self, grid):
        values = sum(
            gaussian_bump(grid, (x, y), height=0.8)
            for x in (0.7, 2.0, 3.3)
            for y in (0.7, 2.0, 3.3)
        )
        peaks = find_peaks(
            values, grid, PeakConfig(max_peaks=4, min_relative_value=0.1)
        )
        assert len(peaks) == 4

    def test_flat_map_raises(self, grid):
        with pytest.raises(LocalizationError):
            find_peaks(np.ones(grid.shape), grid)

    def test_zero_map_raises(self, grid):
        with pytest.raises(LocalizationError):
            find_peaks(np.zeros(grid.shape), grid)

    def test_shape_mismatch(self, grid):
        with pytest.raises(ConfigurationError):
            find_peaks(np.ones((3, 3)), grid)

    def test_peak_at_border_found(self, grid):
        values = gaussian_bump(grid, (0.0, 2.0))
        peaks = find_peaks(values, grid)
        assert peaks[0].col == 0


class TestRefine:
    def test_subgrid_refinement(self, grid):
        true_centre = (2.03, 2.97)
        values = gaussian_bump(grid, true_centre, sigma=0.3)
        peak = find_peaks(values, grid)[0]
        refined = refine_peak_position(values, grid, peak)
        coarse_error = (peak.position - Point(*true_centre)).norm()
        fine_error = (refined - Point(*true_centre)).norm()
        assert fine_error <= coarse_error
        assert fine_error < 0.02

    def test_border_peak_unrefined(self, grid):
        values = gaussian_bump(grid, (0.0, 2.0))
        peak = find_peaks(values, grid)[0]
        refined = refine_peak_position(values, grid, peak)
        assert refined == peak.position

    def test_refinement_bounded_by_half_cell(self, grid):
        values = gaussian_bump(grid, (2.0, 2.0))
        peak = find_peaks(values, grid)[0]
        refined = refine_peak_position(values, grid, peak)
        assert abs(refined.x - peak.position.x) <= grid.resolution / 2
        assert abs(refined.y - peak.position.y) <= grid.resolution / 2
