"""Tests for repro.core.entropy: the Section 5.4 spatial-entropy cue."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.entropy import (
    negentropy,
    peak_neighborhood_entropy,
    shannon_entropy,
    spread_metric,
)
from repro.core.peaks import Peak
from repro.errors import ConfigurationError
from repro.utils.geometry2d import Point
from repro.utils.gridmap import Grid2D

positive_arrays = st.lists(
    st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=50
)


class TestShannonEntropy:
    def test_uniform_is_log_n(self):
        assert shannon_entropy(np.ones(8)) == pytest.approx(np.log(8))

    def test_delta_is_zero(self):
        values = np.zeros(10)
        values[3] = 5.0
        assert shannon_entropy(values) == pytest.approx(0.0)

    def test_all_zero_treated_flat(self):
        assert shannon_entropy(np.zeros(9)) == pytest.approx(np.log(9))

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            shannon_entropy(np.array([1.0, -0.1]))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            shannon_entropy(np.array([]))

    @given(positive_arrays)
    @settings(max_examples=50)
    def test_bounds(self, values):
        arr = np.asarray(values)
        h = shannon_entropy(arr)
        assert -1e-9 <= h <= np.log(arr.size) + 1e-9

    def test_scale_invariant(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        assert shannon_entropy(values) == pytest.approx(
            shannon_entropy(values * 7.3)
        )


class TestNegentropy:
    def test_flat_is_zero(self):
        assert negentropy(np.ones((7, 7))) == pytest.approx(0.0)

    def test_delta_is_log_n(self):
        values = np.zeros((7, 7))
        values[3, 3] = 1.0
        assert negentropy(values) == pytest.approx(np.log(49))

    def test_peaky_exceeds_spread(self):
        """The paper's discriminator: direct-path (peaky) > reflection
        (spread)."""
        x = np.linspace(-3, 3, 7)
        xx, yy = np.meshgrid(x, x)
        peaky = np.exp(-(xx**2 + yy**2) / 0.5)
        spread = np.exp(-(xx**2 + yy**2) / 20.0)
        assert negentropy(peaky) > negentropy(spread)


class TestPeakNeighborhood:
    @pytest.fixture()
    def grid(self):
        return Grid2D(0.0, 2.0, 0.0, 2.0, 0.1)

    def _peak_at(self, grid, x, y):
        row, col = grid.index_of(Point(x, y))
        return Peak(row=row, col=col, position=Point(x, y), value=1.0)

    def test_peaky_vs_flat_neighbourhood(self, grid):
        points = grid.points()
        d2 = (points[:, 0] - 1.0) ** 2 + (points[:, 1] - 1.0) ** 2
        peaky_map = grid.reshape(np.exp(-d2 / 0.005))
        flat_map = np.ones(grid.shape)
        flat_map[grid.index_of(Point(1.0, 1.0))] += 1e-6
        peak = self._peak_at(grid, 1.0, 1.0)
        assert peak_neighborhood_entropy(
            peaky_map, grid, peak
        ) > peak_neighborhood_entropy(flat_map, grid, peak)

    def test_window_validation(self, grid):
        peak = self._peak_at(grid, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            peak_neighborhood_entropy(
                np.ones(grid.shape), grid, peak, window=4
            )

    def test_corner_peak_clipped_window(self, grid):
        values = np.ones(grid.shape)
        values[0, 0] = 2.0
        peak = self._peak_at(grid, 0.0, 0.0)
        h = peak_neighborhood_entropy(values, grid, peak)
        assert np.isfinite(h)

    def test_spread_metric_orders_clusters(self, grid):
        points = grid.points()
        d2 = (points[:, 0] - 1.0) ** 2 + (points[:, 1] - 1.0) ** 2
        tight = grid.reshape(np.exp(-d2 / 0.002))
        loose = grid.reshape(np.exp(-d2 / 0.1))
        peak = self._peak_at(grid, 1.0, 1.0)
        assert spread_metric(tight, grid, peak) < spread_metric(
            loose, grid, peak
        )
