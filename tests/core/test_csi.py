"""Tests for repro.core.csi: tone-segment CSI extraction (Section 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ble.gfsk import GfskModulator
from repro.ble.localization import ToneSegment, localization_pdu
from repro.ble.pdu import DataPdu, assemble_packet
from repro.core.csi import (
    combine_tone_channels,
    extract_band_csi,
    measure_segment_channel,
    stack_band_csi,
)
from repro.errors import CsiExtractionError
from repro.rf.noise import add_awgn
from repro.sdr.iq import IqCapture

AA = 0x5A3B9C71


def make_aligned_capture(channel=4, h=0.6 - 0.3j, snr_db=None, rng=None):
    """Capture = ideal waveform scaled by a known flat channel."""
    packet = assemble_packet(
        localization_pdu(channel), access_address=AA, channel_index=channel
    )
    modulator = GfskModulator()
    iq = h * modulator.modulate(packet.bits)
    if snr_db is not None:
        iq = add_awgn(iq, snr_db, rng=rng)
    capture = IqCapture(
        samples=iq,
        sample_rate=modulator.sample_rate,
        channel_index=channel,
        carrier_frequency_hz=2.412e9,
        start_sample_offset=0,
    )
    return capture, packet, h


class TestSegmentChannel:
    def test_flat_channel_recovered(self):
        capture, packet, h = make_aligned_capture()
        modulator = GfskModulator()
        ideal = modulator.modulate(packet.bits)
        segment = ToneSegment(bit_value=0, start_bit=58, num_bits=4)
        estimate = measure_segment_channel(
            capture.antenna(0), ideal, segment, 8
        )
        assert estimate == pytest.approx(h, rel=1e-9)

    def test_zero_energy_rejected(self):
        segment = ToneSegment(bit_value=0, start_bit=0, num_bits=2)
        with pytest.raises(CsiExtractionError):
            measure_segment_channel(
                np.zeros(64, complex), np.zeros(64, complex), segment, 8
            )

    def test_out_of_range_segment(self):
        segment = ToneSegment(bit_value=0, start_bit=100, num_bits=50)
        with pytest.raises(CsiExtractionError):
            measure_segment_channel(
                np.ones(64, complex), np.ones(64, complex), segment, 8
            )


class TestCombineTones:
    def test_equal_tones(self):
        h = 0.5 * np.exp(1j * 0.7)
        assert combine_tone_channels(h, h) == pytest.approx(h)

    def test_amplitude_is_mean(self):
        combined = combine_tone_channels(2.0 + 0j, 4.0 + 0j)
        assert abs(combined) == pytest.approx(3.0)

    def test_phase_is_circular_mean(self):
        t0 = np.exp(1j * np.radians(179.0))
        t1 = np.exp(1j * np.radians(-179.0))
        combined = combine_tone_channels(t0, t1)
        assert abs(np.degrees(np.angle(combined))) == pytest.approx(
            180.0, abs=1e-6
        )


class TestExtractBandCsi:
    def test_flat_channel_all_antennas(self):
        capture, packet, h = make_aligned_capture()
        csi = extract_band_csi(capture, packet)
        assert csi.channels.shape == (1,)
        assert csi.channels[0] == pytest.approx(h, rel=1e-3)
        assert csi.tone0[0] == pytest.approx(h, rel=1e-3)
        assert csi.tone1[0] == pytest.approx(h, rel=1e-3)

    def test_noisy_channel_close(self, rng):
        capture, packet, h = make_aligned_capture(snr_db=20.0, rng=rng)
        csi = extract_band_csi(capture, packet)
        assert abs(csi.channels[0] - h) < 0.15 * abs(h)

    def test_runless_packet_rejected(self):
        """A packet whose on-air payload strictly alternates offers no
        stable tone segments (at a strict min_run), so CSI extraction
        must refuse rather than return garbage."""
        from repro.ble.whitening import whitening_sequence

        alternating = np.tile([0, 1], 16).astype(np.uint8)
        stream = whitening_sequence(4, 16 + alternating.size)
        payload_bits = alternating ^ stream[16:]
        from repro.ble.pdu import bits_to_bytes

        pdu = DataPdu(payload=bits_to_bytes(payload_bits))
        packet = assemble_packet(pdu, access_address=AA, channel_index=4)
        modulator = GfskModulator()
        capture = IqCapture(
            samples=modulator.modulate(packet.bits),
            sample_rate=modulator.sample_rate,
            channel_index=4,
            carrier_frequency_hz=2.412e9,
        )
        with pytest.raises(CsiExtractionError):
            extract_band_csi(capture, packet, min_run=8, settle_bits=2)

    def test_band_metadata(self):
        capture, packet, _ = make_aligned_capture(channel=10)
        csi = extract_band_csi(capture, packet)
        assert csi.channel_index == 10
        assert csi.frequency_hz == capture.carrier_frequency_hz


class TestStack:
    def test_stack_orders_by_frequency(self):
        capture_a, packet_a, _ = make_aligned_capture(channel=4)
        capture_b, packet_b, _ = make_aligned_capture(channel=20)
        csi_a = extract_band_csi(capture_a, packet_a)
        csi_b = extract_band_csi(capture_b, packet_b)
        csi_b = type(csi_b)(
            channel_index=csi_b.channel_index,
            frequency_hz=2.45e9,
            channels=csi_b.channels,
            tone0=csi_b.tone0,
            tone1=csi_b.tone1,
        )
        stacked = stack_band_csi([csi_b, csi_a])
        assert stacked.shape == (1, 2)
        assert stacked[0, 0] == csi_a.channels[0]

    def test_stack_empty_rejected(self):
        with pytest.raises(CsiExtractionError):
            stack_band_csi([])
