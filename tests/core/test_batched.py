"""Tests for the batched Eq. 17 path: engine, likelihood, localizer."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import (
    BlocConfig,
    BlocLocalizer,
    build_steering_entry,
    compute_likelihood_map,
    correct_phase_offsets,
)
from repro.core.likelihood import compute_likelihood_maps_batched
from repro.core.peaks import (
    PeakConfig,
    find_peaks,
    find_peaks_batch,
    local_maxima_batch,
)
from repro.errors import LocalizationError
from repro.sim import ChannelMeasurementModel
from repro.sim.testbed import open_room_testbed
from repro.utils.geometry2d import Point


@pytest.fixture(scope="module")
def model():
    return ChannelMeasurementModel(testbed=open_room_testbed(), seed=11)


@pytest.fixture(scope="module")
def batch(model):
    points = [Point(0.4, -0.3), Point(-1.1, 0.8), Point(1.6, 1.9)]
    return [model.measure(p) for p in points]


@pytest.fixture(scope="module")
def localizer():
    return BlocLocalizer(config=BlocConfig(grid_resolution_m=0.3))


class TestAnchorLikelihoodBatch:
    def test_matches_per_fix_path(self, batch, localizer):
        corrected = [correct_phase_offsets(o) for o in batch]
        grid = localizer.grid_for(batch[0])
        entry = build_steering_entry(
            grid,
            corrected[0].anchors,
            corrected[0].master_index,
            corrected[0].anchor_baselines_m,
            corrected[0].frequencies_hz,
        )
        alpha = np.stack([c.alpha for c in corrected])
        for anchor in range(corrected[0].num_anchors):
            stacked = entry.anchor_likelihood_batch(anchor, alpha[:, anchor])
            for b, fix in enumerate(corrected):
                single = entry.anchor_likelihood(anchor, fix.alpha[anchor])
                np.testing.assert_allclose(
                    stacked[b], single, rtol=1e-12, atol=1e-12
                )

    def test_empty_batch_maps(self, localizer, batch):
        grid = localizer.grid_for(batch[0])
        assert (
            compute_likelihood_maps_batched([], grid, localizer.engine)
            == []
        )


class TestLikelihoodMapsBatched:
    def test_matches_per_fix_maps(self, batch, localizer):
        corrected = [correct_phase_offsets(o) for o in batch]
        grid = localizer.grid_for(batch[0])
        maps = compute_likelihood_maps_batched(
            corrected, grid, localizer.engine
        )
        assert len(maps) == len(batch)
        for fix, batched_map in zip(corrected, maps):
            single = compute_likelihood_map(
                fix, grid, engine=localizer.engine
            )
            np.testing.assert_allclose(
                batched_map.combined, single.combined, atol=1e-12
            )


class TestPeaksBatch:
    def test_local_maxima_batch_isolates_maps(self):
        stack = np.zeros((2, 5, 5))
        stack[0, 1, 1] = 1.0
        stack[1, 3, 3] = 1.0
        masks = local_maxima_batch(stack, PeakConfig())
        # Map 0's peak must not suppress map 1's neighbourhood.
        assert masks[0][1, 1] and masks[1][3, 3]

    def test_find_peaks_batch_matches_per_map(self, batch, localizer):
        corrected = [correct_phase_offsets(o) for o in batch]
        grid = localizer.grid_for(batch[0])
        maps = compute_likelihood_maps_batched(
            corrected, grid, localizer.engine
        )
        stack = np.stack([m.combined for m in maps])
        batched = find_peaks_batch(stack, grid)
        for b, peaks in enumerate(batched):
            single = find_peaks(stack[b], grid)
            assert [p.position for p in peaks] == [
                p.position for p in single
            ]


class TestLocateBatch:
    def test_matches_locate_per_fix(self, batch, localizer):
        results = localizer.locate_batch(batch)
        for observations, result in zip(batch, results):
            single = localizer.locate(observations, keep_map=False)
            assert abs(result.position.x - single.position.x) < 1e-9
            assert abs(result.position.y - single.position.y) < 1e-9

    def test_empty_batch(self, localizer):
        assert localizer.locate_batch([]) == []

    def test_errors_returned_not_raised(self, batch, localizer):
        degenerate = dataclasses.replace(
            batch[1],
            tag_to_anchor=np.zeros_like(batch[1].tag_to_anchor),
        )
        results = localizer.locate_batch([batch[0], degenerate, batch[2]])
        assert isinstance(results[1], LocalizationError)
        for index in (0, 2):
            single = localizer.locate(batch[index], keep_map=False)
            assert (
                abs(results[index].position.x - single.position.x) < 1e-9
            )

    def test_geometry_stray_falls_back_per_fix(self, batch, localizer):
        stray = batch[1].select_antennas(2)
        results = localizer.locate_batch([batch[0], stray])
        single = localizer.locate(stray, keep_map=False)
        assert abs(results[1].position.x - single.position.x) < 1e-9
        assert abs(results[1].position.y - single.position.y) < 1e-9

    def test_engineless_localizer_still_batches(self, batch):
        direct = BlocLocalizer(
            config=BlocConfig(grid_resolution_m=0.3), engine=None
        )
        cached = BlocLocalizer(config=BlocConfig(grid_resolution_m=0.3))
        results = direct.locate_batch(batch)
        reference = cached.locate_batch(batch)
        for ours, ref in zip(results, reference):
            assert abs(ours.position.x - ref.position.x) < 1e-6
            assert abs(ours.position.y - ref.position.y) < 1e-6
