"""Tests for repro.core.localizer: the end-to-end BLoc pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BlocConfig, BlocLocalizer
from repro.errors import ConfigurationError
from repro.sim import ChannelMeasurementModel
from repro.utils.geometry2d import Point


@pytest.fixture(scope="module")
def quiet_observations():
    """Near-ideal measurement on the clutter-free room."""
    from repro.sim.testbed import open_room_testbed

    testbed = open_room_testbed()
    model = ChannelMeasurementModel(
        testbed=testbed,
        seed=77,
        snr_db=40.0,
        oscillator_drift_std=0.0,
        calibration_error_m=0.0,
        element_phase_error_deg=0.0,
        element_gain_error_db=0.0,
    )
    return model.measure(Point(1.1, 0.3))


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"grid_resolution_m": 0},
            {"grid_margin_m": -1},
            {"selection": "psychic"},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            BlocConfig(**kwargs)


class TestGrid:
    def test_grid_covers_anchors(self, quiet_observations):
        localizer = BlocLocalizer()
        grid = localizer.grid_for(quiet_observations)
        for anchor in quiet_observations.anchors:
            assert grid.contains(anchor.position)

    def test_fixed_bounds(self, quiet_observations):
        localizer = BlocLocalizer(bounds=(-1.0, 1.0, -1.0, 1.0))
        grid = localizer.grid_for(quiet_observations)
        assert grid.x_min == -1.0
        assert grid.x_max == 1.0


class TestLocate:
    def test_accurate_in_clean_conditions(self, quiet_observations):
        localizer = BlocLocalizer()
        result = localizer.locate(quiet_observations)
        error = result.error_m(quiet_observations.ground_truth)
        assert error < 0.25

    def test_keep_map_flag(self, quiet_observations):
        localizer = BlocLocalizer()
        with_map = localizer.locate(quiet_observations, keep_map=True)
        without = localizer.locate(quiet_observations, keep_map=False)
        assert with_map.likelihood is not None
        assert without.likelihood is None

    def test_scored_peaks_available(self, quiet_observations):
        result = BlocLocalizer().locate(quiet_observations)
        assert len(result.scored_peaks) >= 1
        assert result.scored_peaks[0].score >= result.scored_peaks[-1].score

    def test_refinement_moves_subgrid(self, quiet_observations):
        coarse = BlocLocalizer(
            config=BlocConfig(grid_resolution_m=0.1, refine_peaks=False)
        ).locate(quiet_observations)
        refined = BlocLocalizer(
            config=BlocConfig(grid_resolution_m=0.1, refine_peaks=True)
        ).locate(quiet_observations)
        truth = quiet_observations.ground_truth
        assert refined.error_m(truth) <= coarse.error_m(truth) + 1e-9

    def test_selection_strategies_yield_positions(self, quiet_observations):
        for selection in ("score", "shortest", "max_likelihood"):
            localizer = BlocLocalizer(
                config=BlocConfig(selection=selection)
            )
            result = localizer.locate(quiet_observations)
            assert result.position is not None

    def test_shortest_selection_orders_by_distance(self, quiet_observations):
        localizer = BlocLocalizer(config=BlocConfig(selection="shortest"))
        result = localizer.locate(quiet_observations)
        sums = [s.distance_sum_m for s in result.scored_peaks]
        assert sums == sorted(sums)

    def test_stages_composable(self, quiet_observations):
        """correct -> map -> pick can be driven manually."""
        localizer = BlocLocalizer()
        corrected = localizer.correct(quiet_observations)
        grid = localizer.grid_for(quiet_observations)
        likelihood = localizer.map_likelihood(corrected, grid)
        scored = localizer.pick_peak(likelihood, corrected)
        assert scored[0].peak.value > 0
