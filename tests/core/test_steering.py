"""Tests for repro.core.steering: angle and distance spectra."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import SPEED_OF_LIGHT
from repro.core.steering import (
    aliasing_distance_m,
    angle_spectrum,
    distance_spectrum,
    range_resolution_m,
)
from repro.errors import ConfigurationError


def ula_channels(theta_rad, num_antennas=4, spacing=0.0614, f=2.44e9):
    """Synthetic single-path channels for a ULA (library convention:
    element j closer to a +theta source -> positive phase step)."""
    wavelength = SPEED_OF_LIGHT / f
    j = np.arange(num_antennas)
    return np.exp(2j * np.pi * j * spacing * np.sin(theta_rad) / wavelength)


class TestAngleSpectrum:
    @pytest.mark.parametrize("theta_deg", [-50, -20, 0, 15, 40, 70])
    def test_peak_at_true_angle(self, theta_deg):
        theta = np.radians(theta_deg)
        h = ula_channels(theta)
        angles, spectrum = angle_spectrum(h, 0.0614, 2.44e9)
        peak = np.degrees(angles[int(np.argmax(spectrum))])
        assert peak == pytest.approx(theta_deg, abs=2.0)

    def test_normalised_to_one(self):
        h = ula_channels(0.3)
        _, spectrum = angle_spectrum(h, 0.0614, 2.44e9)
        assert spectrum.max() == pytest.approx(1.0)

    def test_multiband_sharper_or_equal(self):
        theta = np.radians(25)
        freqs = np.array([2.41e9, 2.44e9, 2.47e9])
        h = np.column_stack([
            ula_channels(theta, f=f) for f in freqs
        ])
        angles, multi = angle_spectrum(h, 0.0614, freqs)
        peak = np.degrees(angles[int(np.argmax(multi))])
        assert peak == pytest.approx(25, abs=2.0)

    def test_two_sources_two_peaks(self):
        h = ula_channels(np.radians(-40)) + ula_channels(np.radians(40))
        angles, spectrum = angle_spectrum(h, 0.0614, 2.44e9)
        strong = np.degrees(angles[spectrum > 0.8])
        assert strong.min() < -30
        assert strong.max() > 30

    def test_custom_angles(self):
        h = ula_channels(0.0)
        grid = np.linspace(-0.5, 0.5, 21)
        angles, spectrum = angle_spectrum(h, 0.0614, 2.44e9, angles_rad=grid)
        assert angles is grid or np.array_equal(angles, grid)
        assert spectrum.size == 21

    def test_three_dimensional_input_rejected(self):
        with pytest.raises(ConfigurationError):
            angle_spectrum(np.ones((2, 3, 4), complex), 0.0614, 2.44e9)

    def test_vectorised_matches_per_band_loop(self):
        """The einsum over all bands must equal the per-band reference."""
        rng = np.random.default_rng(11)
        num_antennas, num_bands = 4, 9
        h = rng.standard_normal(
            (num_antennas, num_bands)
        ) + 1j * rng.standard_normal((num_antennas, num_bands))
        freqs = 2.404e9 + 2e6 * np.arange(num_bands)
        spacing = 0.0614
        angles = np.linspace(-np.pi / 2.0, np.pi / 2.0, 181)

        # Reference: the original per-band Python loop.
        j = np.arange(num_antennas)
        reference = np.zeros(angles.size)
        for k in range(num_bands):
            wavelength = SPEED_OF_LIGHT / freqs[k]
            phases = (
                -2.0
                * np.pi
                * np.outer(j, np.sin(angles))
                * spacing
                / wavelength
            )
            reference += np.abs(
                np.sum(h[:, k][:, None] * np.exp(1j * phases), axis=0)
            )
        reference /= reference.max()

        _, spectrum = angle_spectrum(h, spacing, freqs, angles_rad=angles)
        assert np.allclose(spectrum, reference)


class TestDistanceSpectrum:
    def test_peak_at_relative_distance(self):
        freqs = 2.404e9 + 2e6 * np.arange(37)
        rel_distance = 3.7
        h = np.exp(-2j * np.pi * freqs * rel_distance / SPEED_OF_LIGHT)
        distances, spectrum = distance_spectrum(h, freqs)
        peak = distances[int(np.argmax(spectrum))]
        assert peak == pytest.approx(rel_distance, abs=0.1)

    def test_negative_relative_distance(self):
        freqs = 2.404e9 + 2e6 * np.arange(37)
        h = np.exp(-2j * np.pi * freqs * (-2.2) / SPEED_OF_LIGHT)
        distances, spectrum = distance_spectrum(h, freqs)
        peak = distances[int(np.argmax(spectrum))]
        assert peak == pytest.approx(-2.2, abs=0.1)

    def test_two_paths_resolved_with_wide_band(self):
        freqs = 2.404e9 + 2e6 * np.arange(37)  # 72 MHz span
        d1, d2 = 1.0, 7.0  # separation >> c/72MHz ~ 4.2 m
        h = np.exp(-2j * np.pi * freqs * d1 / SPEED_OF_LIGHT) + 0.8 * np.exp(
            -2j * np.pi * freqs * d2 / SPEED_OF_LIGHT
        )
        distances, spectrum = distance_spectrum(h, freqs)
        near_d1 = spectrum[np.abs(distances - d1) < 0.5].max()
        near_d2 = spectrum[np.abs(distances - d2) < 0.5].max()
        trough = spectrum[np.abs(distances - (d1 + d2) / 2) < 0.5].min()
        assert near_d1 > 0.8
        assert near_d2 > 0.6
        assert trough < near_d2

    def test_narrowband_cannot_resolve(self):
        """The paper's Eq. 6: 2 MHz cannot separate indoor paths."""
        freqs = np.array([2.404e9, 2.405e9])  # single-channel tones
        d1, d2 = 1.0, 7.0
        h = np.exp(-2j * np.pi * freqs * d1 / SPEED_OF_LIGHT) + np.exp(
            -2j * np.pi * freqs * d2 / SPEED_OF_LIGHT
        )
        distances, spectrum = distance_spectrum(h, freqs)
        # With ~1 MHz of bandwidth the spectrum is essentially flat over
        # indoor scales: no deep separation between the two paths.
        within = spectrum[np.abs(distances) < 10]
        assert within.min() > 0.3

    def test_mismatched_sizes(self):
        with pytest.raises(ConfigurationError):
            distance_spectrum(np.ones(5, complex), np.ones(4))


class TestResolutionFormulas:
    def test_range_resolution(self):
        assert range_resolution_m(80e6) == pytest.approx(3.747, rel=1e-3)

    def test_ble_single_channel_resolution_exceeds_rooms(self):
        """Paper: 1 MHz effective bandwidth -> ~300 m resolution."""
        assert range_resolution_m(1e6) == pytest.approx(299.8, rel=1e-3)

    def test_aliasing_distance(self):
        assert aliasing_distance_m(4e6) == pytest.approx(74.9, rel=1e-3)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            range_resolution_m(0)
        with pytest.raises(ConfigurationError):
            aliasing_distance_m(-1)
