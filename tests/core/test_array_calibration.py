"""Tests for repro.core.array_calibration: reference-beacon calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.array_calibration import (
    ArrayCalibration,
    estimate_calibration,
    expected_geometric_channels,
)
from repro.errors import ConfigurationError, MeasurementError
from repro.sim import ChannelMeasurementModel
from repro.sim.scenario import sample_tag_positions
from repro.sim.testbed import open_room_testbed
from repro.utils.geometry2d import Point


def make_model(element_phase_deg, element_gain_db=1.0, seed=61):
    return ChannelMeasurementModel(
        testbed=open_room_testbed(),
        seed=seed,
        snr_db=35.0,
        oscillator_drift_std=0.0,
        calibration_error_m=0.0,
        element_phase_error_deg=element_phase_deg,
        element_gain_error_db=element_gain_db,
    )


class TestArrayCalibration:
    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            ArrayCalibration(responses=np.ones(4, complex))

    def test_zero_response_rejected(self):
        with pytest.raises(ConfigurationError):
            ArrayCalibration(responses=np.zeros((2, 2), complex))

    def test_apply_shape_check(self, clean_observations):
        calibration = ArrayCalibration(responses=np.ones((2, 2), complex))
        with pytest.raises(ConfigurationError):
            calibration.apply(clean_observations)

    def test_identity_apply_is_noop(self, clean_observations):
        identity = ArrayCalibration(
            responses=np.ones(
                (
                    clean_observations.num_anchors,
                    clean_observations.num_antennas,
                ),
                complex,
            )
        )
        applied = identity.apply(clean_observations)
        assert np.allclose(
            applied.tag_to_anchor, clean_observations.tag_to_anchor
        )


class TestExpectedChannels:
    def test_matches_free_space(self, clean_observations):
        beacon = Point(0.0, 0.0)
        expected = expected_geometric_channels(beacon, clean_observations)
        anchor = clean_observations.anchors[1]
        d = (beacon - anchor.antenna_position(0)).norm()
        assert abs(expected[1, 0, 0]) == pytest.approx(1.0 / d)


class TestEstimation:
    def test_recovers_injected_errors(self):
        """The estimator must recover the simulator's per-element response
        (up to the unobservable per-anchor common factor)."""
        model = make_model(element_phase_deg=25.0)
        references = [
            model.measure(p, round_index=k)
            for k, p in enumerate(
                sample_tag_positions(model.testbed, 6, seed=3)
            )
        ]
        calibration = estimate_calibration(references)
        injected = model._element_responses()
        injected_relative = injected / injected[:, :1]
        estimated = calibration.responses
        error_deg = np.degrees(
            np.abs(np.angle(estimated * np.conj(injected_relative)))
        )
        assert error_deg.max() < 8.0

    def test_calibration_improves_localization(self):
        """Applying the estimated calibration must reduce the error of a
        localizer fed heavily-mismatched arrays."""
        from repro.core import BlocConfig, BlocLocalizer

        model = make_model(element_phase_deg=50.0, seed=71)
        references = [
            model.measure(p, round_index=100 + k)
            for k, p in enumerate(
                sample_tag_positions(model.testbed, 6, seed=4)
            )
        ]
        calibration = estimate_calibration(references)
        localizer = BlocLocalizer(config=BlocConfig(grid_resolution_m=0.08))
        raw_errors, calibrated_errors = [], []
        for k, tag in enumerate(
            sample_tag_positions(model.testbed, 8, seed=5)
        ):
            observations = model.measure(tag, round_index=k)
            raw = localizer.locate(observations, keep_map=False)
            fixed = localizer.locate(
                calibration.apply(observations), keep_map=False
            )
            raw_errors.append((raw.position - tag).norm())
            calibrated_errors.append((fixed.position - tag).norm())
        assert np.median(calibrated_errors) <= np.median(raw_errors)

    def test_requires_reference_data(self):
        with pytest.raises(MeasurementError):
            estimate_calibration([])

    def test_requires_known_positions(self, clean_observations):
        import dataclasses

        anonymous = dataclasses.replace(clean_observations, ground_truth=None)
        with pytest.raises(MeasurementError):
            estimate_calibration([anonymous])

    def test_phase_errors_report(self):
        calibration = ArrayCalibration(
            responses=np.array([[1.0, np.exp(1j * 0.5)]], dtype=complex)
        )
        report = calibration.phase_errors_deg()
        assert report[0, 1] == pytest.approx(np.degrees(0.5))
