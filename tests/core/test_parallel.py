"""Tests for repro.core.parallel: shared-memory steering publication."""

from __future__ import annotations

import gc
import os

import numpy as np
import pytest

from repro.core import build_steering_entry, correct_phase_offsets
from repro.core.parallel import (
    active_segments,
    attach_steering,
    publish_steering_entry,
)
from repro.errors import ConfigurationError
from repro.sim import ChannelMeasurementModel
from repro.sim.testbed import open_room_testbed
from repro.utils.geometry2d import Point
from repro.utils.gridmap import Grid2D


@pytest.fixture(scope="module")
def corrected():
    model = ChannelMeasurementModel(testbed=open_room_testbed(), seed=7)
    return correct_phase_offsets(model.measure(Point(0.4, -0.3)))


@pytest.fixture(scope="module")
def grid():
    return Grid2D(-2.0, 2.0, -1.5, 1.5, 0.25)


@pytest.fixture(scope="module")
def entry(corrected, grid):
    return build_steering_entry(
        grid,
        corrected.anchors,
        corrected.master_index,
        corrected.anchor_baselines_m,
        corrected.frequencies_hz,
    )


def _shm_names():
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith("psm_")}
    except OSError:
        return set()


class TestPublishAttach:
    def test_round_trip_is_bit_exact(self, entry):
        owner = publish_steering_entry(entry, "key")
        try:
            attached = attach_steering(owner.handle)
            clone = attached.entry
            assert np.array_equal(
                clone.frequencies_hz, entry.frequencies_hz
            )
            assert np.array_equal(
                clone.reference_distances_m, entry.reference_distances_m
            )
            assert set(clone.matrices) == set(entry.matrices)
            for key, matrix in entry.matrices.items():
                assert np.array_equal(clone.matrices[key], matrix)
            assert clone.grid.shape == entry.grid.shape
            assert clone.used_lattice == entry.used_lattice
            attached.close()
        finally:
            owner.close()

    def test_attached_views_are_read_only(self, entry):
        owner = publish_steering_entry(entry, "key")
        try:
            attached = attach_steering(owner.handle)
            key = next(iter(attached.entry.matrices))
            with pytest.raises(ValueError):
                attached.entry.matrices[key][0, 0] = 0
            with pytest.raises(ValueError):
                attached.entry.reference_distances_m[0] = 0.0
            attached.close()
        finally:
            owner.close()

    def test_handle_carries_shape_facts(self, entry, grid):
        owner = publish_steering_entry(entry, "key")
        try:
            handle = owner.handle
            assert handle.cache_key == "key"
            assert handle.num_points == grid.size
            assert handle.num_bands == entry.frequencies_hz.size
            assert handle.nbytes > 0
        finally:
            owner.close()


class TestLifecycle:
    def test_refcounted_unlink(self, entry):
        owner = publish_steering_entry(entry, "key")
        name = owner.handle.name
        assert name in active_segments()
        owner.retain()
        owner.close()  # one reference left: still attachable
        attach_steering(owner.handle).close()
        owner.close()  # last reference: unlinks
        assert name not in active_segments()
        with pytest.raises(ConfigurationError):
            attach_steering(owner.handle)

    def test_close_is_idempotent(self, entry):
        owner = publish_steering_entry(entry, "key")
        owner.close()
        owner.close()
        with pytest.raises(ConfigurationError):
            owner.retain()

    def test_attachment_survives_owner_unlink(self, entry):
        # POSIX shm semantics: unlink removes the name, the pages live
        # until the last mapping drops.  An attached reader must keep
        # working after the owner is gone.
        owner = publish_steering_entry(entry, "key")
        attached = attach_steering(owner.handle)
        owner.close()
        key = next(iter(entry.matrices))
        assert np.array_equal(
            attached.entry.matrices[key], entry.matrices[key]
        )
        attached.close()

    def test_entry_keeps_mapping_alive_without_attachment_ref(self, entry):
        # The regression behind the worker segfault: numpy views over
        # shm.buf do not pin the mapping, so the entry itself must.
        owner = publish_steering_entry(entry, "key")
        try:
            clone = attach_steering(owner.handle).entry
            gc.collect()  # drops the AttachedSteering wrapper
            key = next(iter(entry.matrices))
            assert np.array_equal(clone.matrices[key], entry.matrices[key])
            assert float(clone.reference_distances_m[0]) >= 0.0
        finally:
            owner.close()

    def test_no_segments_leak(self, entry):
        before = _shm_names()
        owner = publish_steering_entry(entry, "key")
        attached = attach_steering(owner.handle)
        attached.close()
        owner.close()
        assert active_segments() == ()
        assert _shm_names() <= before
