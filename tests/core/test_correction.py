"""Tests for repro.core.correction: the Eq. 10 triple product.

The central claim of Section 5.2 is tested directly: corrected channels
must be *identical* across different random oscillator-offset
realisations, and must equal the product of the true physical channels.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.correction import (
    anchor_baselines,
    correct_phase_offsets,
    residual_offset_spread,
)
from repro.core.observations import ChannelObservations
from repro.rf.antenna import Anchor
from repro.sim import ChannelMeasurementModel
from repro.utils.geometry2d import Point


def make_observations(rng, num_anchors=3, num_antennas=2, num_bands=5,
                      master_index=0, with_offsets=True):
    """Synthetic observations with known physical channels and offsets."""
    anchors = [
        Anchor(position=Point(float(i), 0.0), num_antennas=num_antennas,
               name=f"A{i}")
        for i in range(num_anchors)
    ]
    shape = (num_anchors, num_antennas, num_bands)
    h_tag = rng.normal(size=shape) + 1j * rng.normal(size=shape)
    h_master = rng.normal(size=shape) + 1j * rng.normal(size=shape)
    measured_tag = h_tag.copy()
    measured_master = h_master.copy()
    if with_offsets:
        phi_tag = rng.uniform(-np.pi, np.pi, num_bands)
        phi_anchor = rng.uniform(-np.pi, np.pi, (num_anchors, num_bands))
        for i in range(num_anchors):
            measured_tag[i] *= np.exp(
                1j * (phi_tag - phi_anchor[i])
            )[None, :]
            measured_master[i] *= np.exp(
                1j * (phi_anchor[master_index] - phi_anchor[i])
            )[None, :]
    observations = ChannelObservations(
        anchors=anchors,
        master_index=master_index,
        frequencies_hz=2.404e9 + 2e6 * np.arange(num_bands),
        tag_to_anchor=measured_tag,
        master_to_anchor=measured_master,
    )
    return observations, h_tag, h_master


class TestEquation10:
    def test_offsets_cancel_exactly(self, rng):
        """alpha must not depend on the offset realisation at all."""
        obs_a, h_tag, h_master = make_observations(rng)
        # Same physical channels, different offsets:
        obs_b = ChannelObservations(
            anchors=obs_a.anchors,
            master_index=0,
            frequencies_hz=obs_a.frequencies_hz,
            tag_to_anchor=h_tag.copy(),
            master_to_anchor=h_master.copy(),
        )
        phi_tag = rng.uniform(-np.pi, np.pi, 5)
        phi_anchor = rng.uniform(-np.pi, np.pi, (3, 5))
        for i in range(3):
            obs_b.tag_to_anchor[i] *= np.exp(
                1j * (phi_tag - phi_anchor[i])
            )[None, :]
            obs_b.master_to_anchor[i] *= np.exp(
                1j * (phi_anchor[0] - phi_anchor[i])
            )[None, :]
        alpha_a = correct_phase_offsets(obs_a).alpha
        alpha_b = correct_phase_offsets(obs_b).alpha
        assert np.allclose(alpha_a, alpha_b, atol=1e-10)

    def test_alpha_equals_physical_product(self, rng):
        """Eq. 12: alpha = h_ij * conj(H_i0) * conj(h_00)."""
        observations, h_tag, h_master = make_observations(rng)
        corrected = correct_phase_offsets(observations)
        h00 = h_tag[0, 0, :]
        for i in range(1, 3):
            expected = (
                h_tag[i]
                * np.conj(h_master[i, 0, :])[None, :]
                * np.conj(h00)[None, :]
            )
            assert np.allclose(corrected.alpha[i], expected, atol=1e-10)

    def test_master_row_uses_self_reference(self, rng):
        observations, h_tag, _ = make_observations(rng)
        corrected = correct_phase_offsets(observations)
        expected = h_tag[0] * np.conj(h_tag[0, 0, :])[None, :]
        assert np.allclose(corrected.alpha[0], expected, atol=1e-10)

    def test_reference_antenna_alpha_is_real(self, rng):
        """alpha at (master, antenna 0) = |h00|^2: real, non-negative."""
        observations, _, _ = make_observations(rng)
        corrected = correct_phase_offsets(observations)
        reference = corrected.alpha[0, 0, :]
        assert np.allclose(reference.imag, 0.0, atol=1e-10)
        assert np.all(reference.real >= 0)

    def test_non_master_reference(self, rng):
        observations, h_tag, h_master = make_observations(
            rng, master_index=1
        )
        corrected = correct_phase_offsets(observations)
        assert corrected.master_index == 1
        h00 = h_tag[1, 0, :]
        expected = (
            h_tag[2]
            * np.conj(h_master[2, 0, :])[None, :]
            * np.conj(h00)[None, :]
        )
        assert np.allclose(corrected.alpha[2], expected, atol=1e-10)

    def test_residual_spread_zero_for_same_channels(self, rng):
        observations, _, _ = make_observations(rng)
        corrected = correct_phase_offsets(observations)
        assert residual_offset_spread(corrected, corrected) < 1e-12


class TestBaselines:
    def test_master_baseline_zero(self):
        anchors = [
            Anchor(position=Point(0, 0), name="m"),
            Anchor(position=Point(3, 4), name="s"),
        ]
        baselines = anchor_baselines(anchors, master_index=0)
        assert baselines[0] == 0.0

    def test_baseline_between_reference_antennas(self):
        anchors = [
            Anchor(position=Point(0, 0), num_antennas=1),
            Anchor(position=Point(3, 4), num_antennas=1),
        ]
        baselines = anchor_baselines(anchors, master_index=0)
        assert baselines[1] == pytest.approx(5.0)


class TestEndToEndCancellation:
    def test_measurement_model_offsets_cancel(self, los_testbed):
        """Two measurements of the same position with different offset
        seeds must agree after correction (noise & drift disabled)."""
        tag = Point(0.5, 0.5)
        alphas = []
        for round_index in (0, 1):
            model = ChannelMeasurementModel(
                testbed=los_testbed,
                seed=55,
                snr_db=200.0,
                oscillator_drift_std=0.0,
                calibration_error_m=0.0,
                element_phase_error_deg=0.0,
                element_gain_error_db=0.0,
            )
            observations = model.measure(tag, round_index=round_index)
            alphas.append(correct_phase_offsets(observations).alpha)
        assert np.allclose(alphas[0], alphas[1], atol=1e-8)

    def test_raw_channels_do_depend_on_offsets(self, los_testbed):
        tag = Point(0.5, 0.5)
        raw = []
        for round_index in (0, 1):
            model = ChannelMeasurementModel(
                testbed=los_testbed,
                seed=55,
                snr_db=200.0,
                oscillator_drift_std=0.0,
                calibration_error_m=0.0,
                element_phase_error_deg=0.0,
                element_gain_error_db=0.0,
            )
            raw.append(
                model.measure(tag, round_index=round_index).tag_to_anchor
            )
        assert not np.allclose(raw[0], raw[1], atol=1e-3)
