"""Tests for repro.core.observations: the measurement data interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.observations import ChannelObservations
from repro.errors import ConfigurationError, MeasurementError
from repro.rf.antenna import Anchor
from repro.utils.geometry2d import Point


def make_observations(num_anchors=4, num_antennas=4, num_bands=8):
    anchors = [
        Anchor(position=Point(float(i), 0.0), num_antennas=num_antennas,
               name=f"A{i}")
        for i in range(num_anchors)
    ]
    rng = np.random.default_rng(0)
    shape = (num_anchors, num_antennas, num_bands)
    return ChannelObservations(
        anchors=anchors,
        master_index=0,
        frequencies_hz=2.404e9 + 2e6 * np.arange(num_bands),
        tag_to_anchor=rng.normal(size=shape) + 1j * rng.normal(size=shape),
        master_to_anchor=rng.normal(size=shape) + 1j * rng.normal(size=shape),
        ground_truth=Point(0.5, 0.5),
    )


class TestConstruction:
    def test_shapes(self):
        obs = make_observations()
        assert obs.num_anchors == 4
        assert obs.num_antennas == 4
        assert obs.num_bands == 8

    def test_bandwidth(self):
        obs = make_observations(num_bands=8)
        assert obs.bandwidth_hz() == pytest.approx(14e6)

    def test_single_band_bandwidth_zero(self):
        obs = make_observations().select_bands([3])
        assert obs.bandwidth_hz() == 0.0

    def test_shape_mismatch_rejected(self):
        obs = make_observations()
        with pytest.raises(MeasurementError):
            ChannelObservations(
                anchors=obs.anchors,
                master_index=0,
                frequencies_hz=obs.frequencies_hz,
                tag_to_anchor=obs.tag_to_anchor[:, :, :4],
                master_to_anchor=obs.master_to_anchor,
            )

    def test_bad_master_index(self):
        obs = make_observations()
        with pytest.raises(ConfigurationError):
            ChannelObservations(
                anchors=obs.anchors,
                master_index=9,
                frequencies_hz=obs.frequencies_hz,
                tag_to_anchor=obs.tag_to_anchor,
                master_to_anchor=obs.master_to_anchor,
            )

    def test_master_property(self):
        obs = make_observations()
        assert obs.master is obs.anchors[0]


class TestBandSelection:
    def test_select_bands(self):
        obs = make_observations()
        sub = obs.select_bands([0, 2, 4])
        assert sub.num_bands == 3
        assert np.array_equal(
            sub.tag_to_anchor, obs.tag_to_anchor[:, :, [0, 2, 4]]
        )

    def test_select_bands_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            make_observations().select_bands([])

    def test_select_bands_out_of_range(self):
        with pytest.raises(ConfigurationError):
            make_observations().select_bands([99])

    def test_select_bandwidth_window(self):
        obs = make_observations()  # bands every 2 MHz from f0
        sub = obs.select_bandwidth(4e6)
        assert sub.num_bands == 3  # f0, f0+2M, f0+4M

    def test_select_bandwidth_single_channel(self):
        obs = make_observations()
        sub = obs.select_bandwidth(1e6)
        assert sub.num_bands == 1

    def test_subsample(self):
        obs = make_observations()
        sub = obs.subsample_bands(2)
        assert sub.num_bands == 4
        # Full span retained: first and last band survive subsampling of
        # an even count only approximately; check the span is > half.
        assert sub.bandwidth_hz() >= obs.bandwidth_hz() / 2

    def test_subsample_factor_one_identity(self):
        obs = make_observations()
        sub = obs.subsample_bands(1)
        assert np.array_equal(sub.frequencies_hz, obs.frequencies_hz)

    def test_original_unmodified(self):
        obs = make_observations()
        obs.select_bands([0])
        assert obs.num_bands == 8


class TestAntennaSelection:
    def test_select_antennas_trims_data(self):
        obs = make_observations()
        sub = obs.select_antennas(3)
        assert sub.num_antennas == 3
        assert np.array_equal(
            sub.tag_to_anchor, obs.tag_to_anchor[:, :3, :]
        )

    def test_selected_anchor_geometry_preserved(self):
        obs = make_observations()
        sub = obs.select_antennas(2)
        for original, truncated in zip(obs.anchors, sub.anchors):
            for j in range(2):
                a = original.antenna_position(j)
                b = truncated.antenna_position(j)
                assert (a - b).norm() < 1e-12

    def test_invalid_count(self):
        with pytest.raises(ConfigurationError):
            make_observations().select_antennas(0)
        with pytest.raises(ConfigurationError):
            make_observations().select_antennas(5)


class TestAnchorSelection:
    def test_select_anchors_subset(self):
        obs = make_observations()
        sub = obs.select_anchors([0, 2])
        assert sub.num_anchors == 2
        assert sub.anchors[1].name == "A2"
        assert np.array_equal(sub.tag_to_anchor[1], obs.tag_to_anchor[2])

    def test_master_reindexed(self):
        obs = make_observations()
        sub = obs.select_anchors([3, 0, 1])
        assert sub.master_index == sub.anchors.index(obs.anchors[0])

    def test_subset_must_contain_master(self):
        with pytest.raises(ConfigurationError):
            make_observations().select_anchors([1, 2])

    def test_out_of_range(self):
        with pytest.raises(ConfigurationError):
            make_observations().select_anchors([0, 7])

    def test_ground_truth_propagates(self):
        obs = make_observations()
        assert obs.select_anchors([0, 1]).ground_truth == obs.ground_truth
