"""Shared fixtures for the test suite.

Session-scoped fixtures hold the expensive objects (testbeds, measured
observations) so hundreds of tests stay fast.  Tests that mutate state
build their own instances.
"""

from __future__ import annotations

import os

# Activate the runtime shape/dtype contracts (repro.analysis.contracts)
# for the whole suite.  This must happen before any repro import: the
# @shaped decorator reads the environment at decoration (import) time.
os.environ.setdefault("REPRO_CONTRACTS", "1")

# Activate tsan-lite (repro.analysis.runtime_locks) too: every lock
# created through make_lock becomes an order-checked CheckedLock and
# @guarded_by classes enforce guarded writes, so the whole suite doubles
# as a lock-discipline audit.  Same decoration-time caveat as above.
os.environ.setdefault("REPRO_LOCK_CHECKS", "1")

import numpy as np
import pytest

from repro.sim import ChannelMeasurementModel
from repro.sim.testbed import open_room_testbed, vicon_testbed
from repro.utils.geometry2d import Point


@pytest.fixture(scope="session")
def testbed():
    """The default cluttered VICON-room testbed."""
    return vicon_testbed()


@pytest.fixture(scope="session")
def los_testbed():
    """A clutter-free room for LOS-only checks."""
    return open_room_testbed()


@pytest.fixture(scope="session")
def tag_position():
    """A representative interior tag position."""
    return Point(0.8, 0.4)


@pytest.fixture(scope="session")
def observations(testbed, tag_position):
    """One measured observation set on the cluttered testbed."""
    model = ChannelMeasurementModel(testbed=testbed, seed=101)
    return model.measure(tag_position)


@pytest.fixture(scope="session")
def clean_observations(los_testbed, tag_position):
    """Noise-free, drift-free observations: Eq. 10 must hold exactly."""
    model = ChannelMeasurementModel(
        testbed=los_testbed,
        seed=202,
        snr_db=200.0,
        oscillator_drift_std=0.0,
        calibration_error_m=0.0,
    )
    return model.measure(tag_position)


@pytest.fixture()
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(autouse=True)
def _ledger_in_tmp(tmp_path, monkeypatch):
    """Keep run-ledger appends out of the working tree during tests.

    CLI commands append to ``runs.ndjson`` by default; tests that do not
    pass ``--ledger`` explicitly would otherwise litter the repository
    root.  Tests asserting ledger behaviour override the path anyway.
    """
    monkeypatch.setenv("REPRO_RUNS_LEDGER", str(tmp_path / "runs.ndjson"))
