"""Sanity tests on the protocol and physics constants."""

from __future__ import annotations

import pytest

from repro import constants


class TestPhysics:
    def test_speed_of_light(self):
        assert constants.SPEED_OF_LIGHT == pytest.approx(2.998e8, rel=1e-3)


class TestSpectrum:
    def test_channel_grid_spans_the_band(self):
        span = constants.BLE_BAND_END_HZ - constants.BLE_BAND_START_HZ
        assert span == pytest.approx(
            (constants.BLE_NUM_CHANNELS - 1) * constants.BLE_CHANNEL_WIDTH_HZ
        )

    def test_37_data_channels_is_prime(self):
        n = constants.BLE_NUM_DATA_CHANNELS
        assert n == 37
        assert all(n % k for k in range(2, int(n**0.5) + 1))

    def test_channel_partition(self):
        assert (
            constants.BLE_NUM_DATA_CHANNELS
            + len(constants.BLE_ADVERTISING_CHANNELS)
            == constants.BLE_NUM_CHANNELS
        )

    def test_total_span(self):
        assert constants.BLE_TOTAL_SPAN_HZ == pytest.approx(80e6)


class TestPhy:
    def test_deviation_from_modulation_index(self):
        assert constants.BLE_FREQ_DEVIATION_HZ == pytest.approx(
            constants.BLE_MODULATION_INDEX * constants.BLE_SYMBOL_RATE / 2
        )

    def test_deviation_is_quarter_mhz(self):
        assert constants.BLE_FREQ_DEVIATION_HZ == pytest.approx(250e3)

    def test_crc_polynomial_bits(self):
        # x^24 + x^10 + x^9 + x^6 + x^4 + x^3 + x + 1 (x^24 implicit).
        expected = (
            (1 << 10) | (1 << 9) | (1 << 6) | (1 << 4) | (1 << 3)
            | (1 << 1) | 1
        )
        assert constants.BLE_CRC_POLYNOMIAL == expected


class TestBlocParameters:
    def test_paper_score_weights(self):
        assert constants.BLOC_SCORE_DISTANCE_WEIGHT == 0.1
        assert constants.BLOC_SCORE_ENTROPY_WEIGHT == 0.05

    def test_entropy_window_is_seven(self):
        assert constants.BLOC_ENTROPY_WINDOW == 7

    def test_room_dimensions(self):
        assert constants.BLOC_ROOM_WIDTH_M == 6.0
        assert constants.BLOC_ROOM_HEIGHT_M == 5.0

    def test_tone_dwell_is_8us(self):
        assert constants.BLOC_TONE_DWELL_S == pytest.approx(8e-6)

    def test_dataset_size_matches_paper(self):
        assert constants.BLOC_DATASET_SIZE == 1700
