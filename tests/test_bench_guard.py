"""Tests for benchmarks/check_bench_regression.py (the CI bench guard).

The guard lives outside the installed package (it is a CI script), so
it is loaded straight from its file path.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = (
    Path(__file__).resolve().parents[1]
    / "benchmarks"
    / "check_bench_regression.py"
)
_spec = importlib.util.spec_from_file_location("bench_guard", _SCRIPT)
guard = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(guard)


def payload(warm=0.01, direct=0.2, **scenario):
    base_scenario = {
        "anchors": 4,
        "antennas": 4,
        "bands": 40,
        "grid_points": 10000,
        "fixes": 8,
    }
    base_scenario.update(scenario)
    return {
        "benchmark": "localize",
        "scenario": base_scenario,
        "steering_cache": {
            "warm_s_per_fix": warm,
            "direct_s_per_fix": direct,
        },
    }


def write(tmp_path, name, data):
    path = tmp_path / name
    path.write_text(json.dumps(data), encoding="utf-8")
    return path


class TestLoadBench:
    def test_valid_payload_loads(self, tmp_path):
        path = write(tmp_path, "ok.json", payload())
        assert guard.load_bench(path)["benchmark"] == "localize"

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ValueError):
            guard.load_bench(tmp_path / "absent.json")

    def test_malformed_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError):
            guard.load_bench(path)

    def test_wrong_benchmark_kind_raises(self, tmp_path):
        data = payload()
        data["benchmark"] = "other"
        with pytest.raises(ValueError):
            guard.load_bench(write(tmp_path, "wrong.json", data))

    @pytest.mark.parametrize("key", ["warm_s_per_fix", "direct_s_per_fix"])
    def test_nonpositive_timing_raises(self, tmp_path, key):
        data = payload()
        data["steering_cache"][key] = 0.0
        with pytest.raises(ValueError):
            guard.load_bench(write(tmp_path, "zero.json", data))


class TestCheck:
    def test_identical_payloads_pass(self):
        assert guard.check(payload(), payload(), tolerance=0.25) == []

    def test_slowdown_within_tolerance_passes(self):
        current = payload(warm=0.012)  # ratio 0.06 vs baseline 0.05
        assert guard.check(payload(), current, tolerance=0.25) == []

    def test_ratio_regression_fails(self):
        current = payload(warm=0.02)  # ratio doubled
        problems = guard.check(payload(), current, tolerance=0.25)
        assert len(problems) == 1
        assert "warm/direct ratio regressed" in problems[0]

    def test_machine_speed_cancels_in_ratio(self):
        # A 10x slower machine scales both paths: the guard stays quiet.
        slow = payload(warm=0.1, direct=2.0)
        assert guard.check(payload(), slow, tolerance=0.25) == []

    def test_absolute_requires_matching_scenarios(self):
        current = payload(grid_points=400)
        problems = guard.check(
            payload(), current, tolerance=0.25, absolute=True
        )
        assert any("scenarios differ" in p for p in problems)

    def test_absolute_catches_flat_ratio_regression(self):
        # Both paths slowed equally on the same machine/scenario: the
        # ratio hides it, --absolute does not.
        current = payload(warm=0.05, direct=1.0)
        assert guard.check(payload(), current, tolerance=0.25) == []
        problems = guard.check(
            payload(), current, tolerance=0.25, absolute=True
        )
        assert any("warm_s_per_fix regressed" in p for p in problems)


class TestMain:
    def test_pass_exits_zero(self, tmp_path, capsys):
        base = write(tmp_path, "base.json", payload())
        cur = write(tmp_path, "cur.json", payload())
        assert guard.main([str(cur), "--baseline", str(base)]) == 0
        assert "bench guard ok" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        base = write(tmp_path, "base.json", payload())
        cur = write(tmp_path, "cur.json", payload(warm=0.05))
        assert guard.main([str(cur), "--baseline", str(base)]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_bad_input_exits_two(self, tmp_path, capsys):
        base = write(tmp_path, "base.json", payload())
        assert (
            guard.main(
                [str(tmp_path / "absent.json"), "--baseline", str(base)]
            )
            == 2
        )
        assert "error:" in capsys.readouterr().err

    def test_negative_tolerance_exits_two(self, tmp_path):
        base = write(tmp_path, "base.json", payload())
        cur = write(tmp_path, "cur.json", payload())
        assert (
            guard.main(
                [
                    str(cur),
                    "--baseline",
                    str(base),
                    "--tolerance",
                    "-0.1",
                ]
            )
            == 2
        )

    def test_default_baseline_is_committed_file(self):
        assert guard.DEFAULT_BASELINE.name == "BENCH_localize.json"
        assert guard.DEFAULT_BASELINE.exists()

    def test_committed_baseline_passes_against_itself(self, capsys):
        assert guard.main([str(guard.DEFAULT_BASELINE)]) == 0
