"""Tests for repro.sim.dataset: evaluation dataset generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.dataset import EvaluationDataset, build_dataset
from repro.sim.testbed import open_room_testbed
from repro.utils.geometry2d import Point


@pytest.fixture(scope="module")
def small_dataset():
    return build_dataset(open_room_testbed(), num_positions=6, seed=9)


class TestBuildDataset:
    def test_size(self, small_dataset):
        assert len(small_dataset) == 6

    def test_every_entry_has_ground_truth(self, small_dataset):
        for obs in small_dataset:
            assert obs.ground_truth is not None

    def test_truths_match_entries(self, small_dataset):
        truths = small_dataset.truths()
        for truth, obs in zip(truths, small_dataset):
            assert truth == obs.ground_truth

    def test_deterministic(self):
        testbed = open_room_testbed()
        a = build_dataset(testbed, num_positions=4, seed=11)
        b = build_dataset(testbed, num_positions=4, seed=11)
        for obs_a, obs_b in zip(a, b):
            assert np.array_equal(obs_a.tag_to_anchor, obs_b.tag_to_anchor)

    def test_explicit_positions(self):
        testbed = open_room_testbed()
        positions = [Point(0.0, 0.0), Point(1.0, 1.0)]
        dataset = build_dataset(testbed, 0, positions=positions)
        assert dataset.truths() == positions


class TestTransformed:
    def test_transform_applied(self, small_dataset):
        derived = small_dataset.transformed(lambda o: o.select_antennas(2))
        assert all(obs.num_antennas == 2 for obs in derived)

    def test_original_untouched(self, small_dataset):
        small_dataset.transformed(lambda o: o.select_antennas(2))
        assert all(obs.num_antennas == 4 for obs in small_dataset)


class TestValidation:
    def test_entries_require_ground_truth(self, small_dataset):
        entry = small_dataset.observations[0]
        entry_without = type(entry)(
            anchors=entry.anchors,
            master_index=entry.master_index,
            frequencies_hz=entry.frequencies_hz,
            tag_to_anchor=entry.tag_to_anchor,
            master_to_anchor=entry.master_to_anchor,
            ground_truth=None,
        )
        with pytest.raises(ConfigurationError):
            EvaluationDataset(
                testbed=small_dataset.testbed,
                observations=[entry_without],
            )
