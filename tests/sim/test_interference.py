"""Tests for repro.sim.interference: Wi-Fi collision modelling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, MeasurementError
from repro.sim.interference import (
    InterferedMeasurementModel,
    WifiNetwork,
    affected_data_channels,
    blacklist_map,
)
from repro.sim.measurement import ChannelMeasurementModel
from repro.sim.testbed import open_room_testbed
from repro.utils.geometry2d import Point


@pytest.fixture(scope="module")
def base_model():
    return ChannelMeasurementModel(testbed=open_room_testbed(), seed=41)


class TestWifiNetwork:
    def test_invalid_channel(self):
        with pytest.raises(ConfigurationError):
            WifiNetwork(channel=3, duty_cycle=0.5)

    def test_invalid_duty(self):
        with pytest.raises(ConfigurationError):
            WifiNetwork(channel=1, duty_cycle=1.5)

    def test_overlap_boundaries(self):
        network = WifiNetwork(channel=6, duty_cycle=0.5)
        assert network.overlaps(2.437e9)
        assert network.overlaps(2.430e9)
        assert not network.overlaps(2.404e9)


class TestAffectedChannels:
    def test_one_network_covers_about_ten(self):
        affected = affected_data_channels(
            [WifiNetwork(channel=1, duty_cycle=1.0)]
        )
        # ~20 MHz of 2 MHz-wide channels minus the advertising gap.
        assert 7 <= len(affected) <= 10

    def test_three_networks_leave_channels(self):
        networks = [
            WifiNetwork(channel=c, duty_cycle=1.0) for c in (1, 6, 11)
        ]
        cm = blacklist_map(networks)
        assert cm.num_used >= 8
        for channel in cm.used:
            assert channel not in affected_data_channels(networks)


class TestInterferedModel:
    def test_no_networks_no_loss(self, base_model):
        model = InterferedMeasurementModel(base=base_model)
        obs = model.measure(Point(0.3, 0.3))
        assert obs.num_bands == 37
        assert model.expected_loss_fraction() == 0.0

    def test_busy_network_loses_bands(self, base_model):
        model = InterferedMeasurementModel(
            base=base_model,
            networks=[WifiNetwork(channel=6, duty_cycle=0.9)],
            seed=3,
        )
        obs = model.measure(Point(0.3, 0.3))
        assert obs.num_bands < 37
        assert obs.num_bands >= 27  # only one 20 MHz block affected

    def test_losses_limited_to_overlap(self, base_model):
        model = InterferedMeasurementModel(
            base=base_model,
            networks=[WifiNetwork(channel=1, duty_cycle=1.0)],
            seed=4,
        )
        obs = model.measure(Point(0.3, 0.3))
        for frequency in obs.frequencies_hz:
            assert model.collision_probability(frequency) < 1.0

    def test_saturated_spectrum_raises(self, base_model):
        networks = [
            WifiNetwork(channel=c, duty_cycle=1.0) for c in (1, 6, 11)
        ]
        model = InterferedMeasurementModel(
            base=base_model, networks=networks, min_surviving_bands=30
        )
        with pytest.raises(MeasurementError):
            model.measure(Point(0.3, 0.3))

    def test_localization_survives_interference(self, base_model):
        """The Section 8.6 claim end to end: heavy Wi-Fi on one channel
        barely moves the fix."""
        from repro.core import BlocConfig, BlocLocalizer

        localizer = BlocLocalizer(config=BlocConfig(grid_resolution_m=0.08))
        tag = Point(0.6, 0.4)
        clean = localizer.locate(
            base_model.measure(tag, round_index=7), keep_map=False
        )
        interfered_model = InterferedMeasurementModel(
            base=base_model,
            networks=[WifiNetwork(channel=6, duty_cycle=0.8)],
            seed=5,
        )
        interfered = localizer.locate(
            interfered_model.measure(tag, round_index=7), keep_map=False
        )
        drift = (clean.position - interfered.position).norm()
        assert drift < 0.6
