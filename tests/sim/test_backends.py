"""Tests for the evaluate() backend matrix: serial/thread/process x batch.

The process-backend stubs live at module level so they pickle under
both fork and spawn start methods.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro import BlocConfig, BlocLocalizer
from repro.core.parallel import active_segments
from repro.errors import ConfigurationError, LocalizationError
from repro.sim import DiagnosticsCapture
from repro.sim.dataset import build_dataset
from repro.sim.procpool import WORKER_DIED_REASON, WORKER_ID_STRIDE
from repro.sim.runner import BACKENDS, evaluate, evaluate_anchor_subsets
from repro.sim.testbed import open_room_testbed
from repro.utils.geometry2d import Point


class Oracle:
    """Ground-truth localizer (picklable, engine-less)."""

    def locate(self, observations, keep_map=True):
        class Result:
            position = observations.ground_truth

        return Result()


class Fails:
    def locate(self, observations, keep_map=True):
        raise LocalizationError("nope")


class FailsBeyond:
    """Fails only on fixes whose truth lies right of a threshold."""

    def __init__(self, x_threshold):
        self.x_threshold = x_threshold

    def locate(self, observations, keep_map=True):
        truth = observations.ground_truth
        if truth.x > self.x_threshold:
            raise LocalizationError("out of range")

        class Result:
            position = truth

        return Result()


class CrashingBloc(BlocLocalizer):
    """A real BLoc localizer whose every fix SIGKILLs its process."""

    def locate(self, observations, keep_map=True):
        os.kill(os.getpid(), signal.SIGKILL)


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(open_room_testbed(), num_positions=5, seed=13)


@pytest.fixture(scope="module")
def small_dataset():
    return build_dataset(open_room_testbed(), num_positions=3, seed=21)


def _bloc():
    return BlocLocalizer(config=BlocConfig(grid_resolution_m=0.3))


class TestBackendSelection:
    def test_backends_tuple(self):
        assert BACKENDS == ("serial", "thread", "process")

    def test_default_is_serial(self, dataset):
        run = evaluate(Oracle(), dataset)
        assert run.backend == "serial"
        assert run.effective_workers == 1
        assert run.batch_size is None

    def test_workers_imply_thread(self, dataset):
        run = evaluate(Oracle(), dataset, workers=2)
        assert run.backend == "thread"

    def test_unknown_backend_rejected(self, dataset):
        with pytest.raises(ConfigurationError):
            evaluate(Oracle(), dataset, backend="gpu")

    def test_serial_backend_rejects_workers(self, dataset):
        with pytest.raises(ConfigurationError):
            evaluate(Oracle(), dataset, backend="serial", workers=2)

    def test_bad_batch_size_rejected(self, dataset):
        with pytest.raises(ConfigurationError):
            evaluate(Oracle(), dataset, batch_size=0)

    def test_capture_incompatible_with_process(self, dataset, tmp_path):
        capture = DiagnosticsCapture(directory=tmp_path, worst_n=1)
        with pytest.raises(ConfigurationError):
            evaluate(
                Oracle(), dataset, workers=2, backend="process",
                capture=capture,
            )

    def test_capture_incompatible_with_batching(self, dataset, tmp_path):
        capture = DiagnosticsCapture(directory=tmp_path, worst_n=1)
        with pytest.raises(ConfigurationError):
            evaluate(Oracle(), dataset, batch_size=4, capture=capture)

    def test_workers_clamped_to_dataset(self, dataset):
        run = evaluate(Oracle(), dataset, workers=32)
        assert run.effective_workers == len(dataset)

    def test_run_metadata_recorded(self, dataset):
        run = evaluate(
            Oracle(), dataset, workers=2, backend="process", batch_size=2
        )
        assert run.backend == "process"
        assert run.effective_workers == 2
        assert run.batch_size == 2


class TestProcessBackend:
    def test_records_match_serial(self, dataset):
        guess = Point(0.2, -0.4)

        class Result:
            position = guess

        serial = evaluate(Oracle(), dataset)
        process = evaluate(
            Oracle(), dataset, workers=2, backend="process"
        )
        assert [r.error_m for r in serial.records] == [
            r.error_m for r in process.records
        ]
        assert [r.truth for r in serial.records] == [
            r.truth for r in process.records
        ]

    def test_failures_preserved_in_order(self, dataset):
        run = evaluate(Fails(), dataset, workers=2, backend="process")
        assert run.num_failed == len(dataset)
        assert run.failure_reasons() == ["nope"] * len(dataset)

    def test_mixed_failures_keep_dataset_order(self, dataset):
        median_x = sorted(
            o.ground_truth.x for o in dataset.observations
        )[len(dataset) // 2]
        serial = evaluate(FailsBeyond(median_x), dataset)
        process = evaluate(
            FailsBeyond(median_x), dataset, workers=2, backend="process"
        )
        assert serial.failure_reasons() == process.failure_reasons()
        assert 0 < process.num_failed < len(dataset)

    def test_worker_metrics_merge_into_one_registry(self, dataset):
        from repro.obs import observed

        with observed() as obs:
            evaluate(Oracle(), dataset, workers=2, backend="process")
        assert obs.metrics.get("eval.fixes_total").value == len(dataset)
        assert obs.metrics.get("eval.fix_latency_s").count == len(dataset)

    def test_worker_failure_counters_merge(self, dataset):
        from repro.obs import observed

        with observed() as obs:
            evaluate(Fails(), dataset, workers=2, backend="process")
        counter = obs.metrics.get("eval.failures.LocalizationError")
        assert counter is not None and counter.value == len(dataset)

    def test_worker_spans_disjoint_and_under_evaluate_root(self, dataset):
        from repro.obs import observed

        with observed() as obs:
            with obs.span("session"):
                evaluate(Oracle(), dataset, workers=2, backend="process")
        spans = obs.tracer.finished()
        roots = [s for s in spans if s.name == "evaluate"]
        assert len(roots) == 1
        fixes = [s for s in spans if s.name == "fix"]
        assert len(fixes) == len(dataset)
        # Cross-process parentage: the SpanHandle crossed the pool.
        assert {s.parent_id for s in fixes} == {roots[0].span_id}
        # Worker ids live in pid-offset blocks, disjoint from the
        # parent's (offset 0) and from each other.
        assert all(s.span_id >= WORKER_ID_STRIDE for s in fixes)
        ids = [s.span_id for s in spans]
        assert len(ids) == len(set(ids))
        assert {s.attributes["index"] for s in fixes} == set(
            range(len(dataset))
        )

    def test_anchor_subsets_match_serial(self, dataset):
        serial = evaluate_anchor_subsets(
            Oracle(), dataset, subset_size=3
        )
        process = evaluate_anchor_subsets(
            Oracle(), dataset, subset_size=3, workers=2, backend="process"
        )
        assert [r.error_m for r in serial.records] == [
            r.error_m for r in process.records
        ]


class TestWorkerCrash:
    def test_crash_leaves_no_shm_and_clean_failure_reasons(self, dataset):
        def shm_names():
            try:
                return {
                    n
                    for n in os.listdir("/dev/shm")
                    if n.startswith("psm_")
                }
            except OSError:
                return set()

        before = shm_names()
        localizer = CrashingBloc(
            config=BlocConfig(grid_resolution_m=0.5)
        )
        run = evaluate(
            localizer, dataset, workers=2, backend="process"
        )
        assert len(run.records) == len(dataset)
        assert all(
            r.failure_reason == WORKER_DIED_REASON for r in run.records
        )
        assert all(r.error_m == float("inf") for r in run.records)
        assert all(r.estimate is None for r in run.records)
        # The owner segment was unlinked in the sweep's finally block.
        assert active_segments() == ()
        assert shm_names() <= before


class TestBatchedEvaluate:
    def test_stub_fallback_keeps_order(self, dataset):
        serial = evaluate(Oracle(), dataset)
        batched = evaluate(Oracle(), dataset, batch_size=2)
        assert [r.error_m for r in serial.records] == [
            r.error_m for r in batched.records
        ]

    def test_per_fix_failures_contained_in_batch(self, dataset):
        median_x = sorted(
            o.ground_truth.x for o in dataset.observations
        )[len(dataset) // 2]
        serial = evaluate(FailsBeyond(median_x), dataset)
        batched = evaluate(FailsBeyond(median_x), dataset, batch_size=3)
        assert serial.failure_reasons() == batched.failure_reasons()
        assert [r.error_m for r in serial.records] == [
            r.error_m for r in batched.records
        ]

    def test_batched_metrics_amortize_latency(self, dataset):
        from repro.obs import observed

        with observed() as obs:
            evaluate(Oracle(), dataset, batch_size=2)
        assert obs.metrics.get("eval.fixes_total").value == len(dataset)
        assert obs.metrics.get("eval.fix_latency_s").count == len(dataset)


class TestEquivalence:
    """Acceptance: backend/batched results equal serial on the room."""

    def test_process_backend_bit_identical(self, small_dataset):
        serial = evaluate(_bloc(), small_dataset)
        process = evaluate(
            _bloc(), small_dataset, workers=2, backend="process"
        )
        assert [r.error_m for r in serial.records] == [
            r.error_m for r in process.records
        ]

    def test_batched_within_documented_tolerance(self, small_dataset):
        serial = evaluate(_bloc(), small_dataset)
        batched = evaluate(_bloc(), small_dataset, batch_size=3)
        for ours, ref in zip(batched.records, serial.records):
            assert ref.estimate is not None
            # BLAS reduction reordering only: nanometre-scale (the
            # tolerance DESIGN.md documents is < 1e-9 m).
            assert abs(ours.error_m - ref.error_m) < 1e-9
            assert abs(ours.estimate.x - ref.estimate.x) < 1e-9
            assert abs(ours.estimate.y - ref.estimate.y) < 1e-9

    def test_process_batched_matches_serial(self, small_dataset):
        serial = evaluate(_bloc(), small_dataset)
        combined = evaluate(
            _bloc(),
            small_dataset,
            workers=2,
            backend="process",
            batch_size=2,
        )
        for ours, ref in zip(combined.records, serial.records):
            assert abs(ours.error_m - ref.error_m) < 1e-9
