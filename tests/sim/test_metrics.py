"""Tests for repro.sim.metrics: error statistics and spatial maps."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sim.metrics import (
    ErrorStats,
    cdf_table,
    errors_from_fixes,
    format_comparison_row,
    spatial_rmse_map,
)
from repro.utils.geometry2d import Point

error_samples = st.lists(
    st.floats(min_value=0.0, max_value=50.0), min_size=1, max_size=200
)


class TestErrorStats:
    def test_median(self):
        stats = ErrorStats(np.array([1.0, 2.0, 9.0]))
        assert stats.median_m() == 2.0

    def test_percentile(self):
        stats = ErrorStats(np.arange(1, 101, dtype=float))
        assert stats.percentile_m(90) == pytest.approx(90.1)

    def test_rmse_vs_mean(self):
        stats = ErrorStats(np.array([0.0, 2.0]))
        assert stats.mean_m() == 1.0
        assert stats.rmse_m() == pytest.approx(np.sqrt(2.0))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ErrorStats(np.array([]))

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            ErrorStats(np.array([-0.1]))

    def test_cdf_monotone_to_one(self):
        stats = ErrorStats(np.array([3.0, 1.0, 2.0]))
        xs, ps = stats.cdf()
        assert np.all(np.diff(xs) >= 0)
        assert ps[-1] == 1.0

    def test_fraction_below(self):
        stats = ErrorStats(np.array([0.5, 1.5, 2.5, 3.5]))
        assert stats.fraction_below(2.0) == 0.5

    def test_summary_format(self):
        stats = ErrorStats(np.array([0.86]))
        text = stats.summary()
        assert "median=86cm" in text

    @given(error_samples)
    @settings(max_examples=50)
    def test_median_between_extremes(self, errors):
        stats = ErrorStats(np.array(errors))
        assert stats.errors_m[0] <= stats.median_m() <= stats.errors_m[-1]

    @given(error_samples)
    @settings(max_examples=50)
    def test_rmse_at_least_mean(self, errors):
        stats = ErrorStats(np.array(errors))
        assert stats.rmse_m() >= stats.mean_m() - 1e-9


class TestErrorsFromFixes:
    def test_pairwise_distance(self):
        stats = errors_from_fixes(
            [Point(0, 0), Point(1, 1)], [Point(3, 4), Point(1, 1)]
        )
        assert stats.errors_m[0] == 0.0
        assert stats.errors_m[1] == pytest.approx(5.0)

    def test_count_mismatch(self):
        with pytest.raises(ConfigurationError):
            errors_from_fixes([Point(0, 0)], [])


class TestSpatialRmse:
    def test_binning(self):
        truths = [Point(0.25, 0.25), Point(0.3, 0.3), Point(1.7, 1.7)]
        errors = [1.0, 1.0, 2.0]
        x_edges, y_edges, rmse = spatial_rmse_map(
            truths, errors, bounds=(0, 2, 0, 2), bin_size_m=1.0
        )
        assert rmse.shape == (2, 2)
        assert rmse[0, 0] == pytest.approx(1.0)
        assert rmse[1, 1] == pytest.approx(2.0)
        assert np.isnan(rmse[0, 1])

    def test_count_mismatch(self):
        with pytest.raises(ConfigurationError):
            spatial_rmse_map([Point(0, 0)], [], (0, 1, 0, 1))

    def test_invalid_bin(self):
        with pytest.raises(ConfigurationError):
            spatial_rmse_map([Point(0, 0)], [1.0], (0, 1, 0, 1), bin_size_m=0)

    def test_point_on_boundary_clipped(self):
        _, _, rmse = spatial_rmse_map(
            [Point(2.0, 2.0)], [1.0], bounds=(0, 2, 0, 2), bin_size_m=1.0
        )
        assert rmse[1, 1] == pytest.approx(1.0)


class TestReports:
    def test_cdf_table(self):
        stats = ErrorStats(np.array([0.5, 1.5]))
        table = cdf_table(stats, [1.0, 2.0])
        assert table == [(1.0, 0.5), (2.0, 1.0)]

    def test_format_row_contains_both(self):
        stats = ErrorStats(np.array([0.86]))
        row = format_comparison_row("BLoc", 86.0, stats, paper_p90_cm=170.0)
        assert "paper median" in row
        assert "measured median" in row
        assert "86" in row
