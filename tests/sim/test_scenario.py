"""Tests for repro.sim.scenario: tag placement sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.scenario import (
    grid_tag_positions,
    sample_tag_positions,
    walking_path,
)
from repro.sim.testbed import open_room_testbed


@pytest.fixture(scope="module")
def testbed():
    return open_room_testbed()


class TestSampling:
    def test_count_and_bounds(self, testbed):
        positions = sample_tag_positions(testbed, 50, seed=1)
        assert len(positions) == 50
        x_min, x_max, y_min, y_max = testbed.tag_area_bounds()
        for p in positions:
            assert x_min <= p.x <= x_max
            assert y_min <= p.y <= y_max

    def test_deterministic(self, testbed):
        a = sample_tag_positions(testbed, 10, seed=2)
        b = sample_tag_positions(testbed, 10, seed=2)
        assert a == b

    def test_min_separation_respected(self, testbed):
        positions = sample_tag_positions(
            testbed, 40, seed=3, min_separation_m=0.3
        )
        arr = np.array([tuple(p) for p in positions])
        for i in range(len(arr)):
            for j in range(i + 1, len(arr)):
                assert np.linalg.norm(arr[i] - arr[j]) >= 0.3

    def test_impossible_separation_raises(self, testbed):
        with pytest.raises(ConfigurationError):
            sample_tag_positions(
                testbed, 1000, seed=4, min_separation_m=1.0
            )

    def test_invalid_count(self, testbed):
        with pytest.raises(ConfigurationError):
            sample_tag_positions(testbed, 0)

    def test_paper_scale_density_feasible(self, testbed):
        """The paper's 1700 points with ~10 cm neighbour spacing fit the
        room; verify a scaled-down version of that density works."""
        positions = sample_tag_positions(
            testbed, 200, seed=5, min_separation_m=0.1
        )
        assert len(positions) == 200


class TestGridPositions:
    def test_spacing(self, testbed):
        positions = grid_tag_positions(testbed, spacing_m=1.0)
        xs = sorted(set(round(p.x, 6) for p in positions))
        assert np.allclose(np.diff(xs), 1.0)

    def test_invalid_spacing(self, testbed):
        with pytest.raises(ConfigurationError):
            grid_tag_positions(testbed, spacing_m=0)


class TestWalkingPath:
    def test_step_bound(self, testbed):
        path = walking_path(testbed, num_points=30, seed=6, step_m=0.25)
        for a, b in zip(path, path[1:]):
            assert (b - a).norm() <= 0.25 * np.sqrt(2) + 1e-9

    def test_stays_in_bounds(self, testbed):
        path = walking_path(testbed, num_points=100, seed=7)
        x_min, x_max, y_min, y_max = testbed.tag_area_bounds(0.5)
        for p in path:
            assert x_min <= p.x <= x_max
            assert y_min <= p.y <= y_max

    def test_needs_two_points(self, testbed):
        with pytest.raises(ConfigurationError):
            walking_path(testbed, num_points=1)
