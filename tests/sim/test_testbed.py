"""Tests for repro.sim.testbed: the evaluation deployments."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.testbed import Testbed as DeployedTestbed
from repro.sim.testbed import open_room_testbed, vicon_testbed
from repro.utils.geometry2d import Point


class TestViconTestbed:
    def test_room_dimensions(self):
        testbed = vicon_testbed()
        x_min, x_max, y_min, y_max = testbed.environment.bounds()
        assert (x_max - x_min) == pytest.approx(6.0)
        assert (y_max - y_min) == pytest.approx(5.0)

    def test_four_anchors_master_first(self):
        testbed = vicon_testbed()
        assert len(testbed.anchors) == 4
        assert testbed.master.name == "AP1"

    def test_clutter_present(self):
        testbed = vicon_testbed()
        names = {r.name for r in testbed.environment.reflectors}
        assert "cupboard" in names
        assert any(name.startswith("clutter-") for name in names)

    def test_clutter_outside_tag_area(self):
        """Periphery clutter must not sit inside the sampled tag area
        (except the deliberate interior rack)."""
        testbed = vicon_testbed()
        x_min, x_max, y_min, y_max = testbed.tag_area_bounds()
        for reflector in testbed.environment.reflectors:
            if reflector.name == "rack":
                continue
            for endpoint in (reflector.segment.a, reflector.segment.b):
                inside = (
                    x_min < endpoint.x < x_max
                    and y_min < endpoint.y < y_max
                )
                assert not inside, f"{reflector.name} inside tag area"

    def test_deterministic_given_seed(self):
        a = vicon_testbed(clutter_seed=3)
        b = vicon_testbed(clutter_seed=3)
        segs_a = [(r.segment.a, r.segment.b) for r in a.environment.reflectors]
        segs_b = [(r.segment.a, r.segment.b) for r in b.environment.reflectors]
        assert segs_a == segs_b

    def test_antenna_count_parameter(self):
        testbed = vicon_testbed(num_antennas=3)
        assert all(a.num_antennas == 3 for a in testbed.anchors)


class TestOpenRoom:
    def test_no_clutter(self):
        testbed = open_room_testbed()
        assert testbed.environment.reflectors == []


class TestTestbedClass:
    def test_needs_anchors(self):
        testbed = open_room_testbed()
        with pytest.raises(ConfigurationError):
            DeployedTestbed(environment=testbed.environment, anchors=[])

    def test_master_index_validated(self):
        testbed = open_room_testbed()
        with pytest.raises(ConfigurationError):
            DeployedTestbed(
                environment=testbed.environment,
                anchors=testbed.anchors,
                master_index=9,
            )

    def test_tag_area_strictly_inside(self):
        testbed = open_room_testbed()
        x_min, x_max, y_min, y_max = testbed.tag_area_bounds(0.5)
        bx_min, bx_max, by_min, by_max = testbed.environment.bounds()
        assert x_min > bx_min and x_max < bx_max
        assert y_min > by_min and y_max < by_max

    def test_with_antennas(self):
        testbed = open_room_testbed().with_antennas(2)
        assert all(a.num_antennas == 2 for a in testbed.anchors)
