"""Tests for repro.sim.runner: the evaluation sweep driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import LocalizationError
from repro.sim.dataset import build_dataset
from repro.sim.runner import evaluate, evaluate_anchor_subsets
from repro.sim.testbed import open_room_testbed
from repro.utils.geometry2d import Point


class PerfectOracle:
    """A localizer that returns the ground truth (for runner testing)."""

    def locate(self, observations, keep_map=True):
        class Result:
            position = observations.ground_truth

        return Result()


class FixedGuess:
    def __init__(self, point):
        self._point = point

    def locate(self, observations, keep_map=True):
        guess = self._point

        class Result:
            position = guess

        return Result()


class AlwaysFails:
    def locate(self, observations, keep_map=True):
        raise LocalizationError("nope")


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(open_room_testbed(), num_positions=5, seed=13)


class TestEvaluate:
    def test_oracle_zero_error(self, dataset):
        run = evaluate(PerfectOracle(), dataset, label="oracle")
        assert run.stats().median_m() == 0.0
        assert run.num_failed == 0

    def test_fixed_guess_errors_match_geometry(self, dataset):
        guess = Point(0.0, 0.0)
        run = evaluate(FixedGuess(guess), dataset)
        for record in run.records:
            assert record.error_m == pytest.approx(
                (record.truth - guess).norm()
            )

    def test_failures_recorded_not_raised(self, dataset):
        run = evaluate(AlwaysFails(), dataset)
        assert run.num_failed == len(dataset)
        stats = run.stats(failure_error_m=7.0)
        assert stats.median_m() == 7.0

    def test_transform_applied(self, dataset):
        seen = []

        class Spy:
            def locate(self, observations, keep_map=True):
                seen.append(observations.num_antennas)

                class Result:
                    position = observations.ground_truth

                return Result()

        evaluate(Spy(), dataset, transform=lambda o: o.select_antennas(2))
        assert set(seen) == {2}

    def test_limit(self, dataset):
        run = evaluate(PerfectOracle(), dataset, limit=2)
        assert len(run.records) == 2

    def test_limit_zero_means_no_entries(self, dataset):
        run = evaluate(PerfectOracle(), dataset, limit=0)
        assert run.records == []

    def test_limit_none_means_all_entries(self, dataset):
        run = evaluate(PerfectOracle(), dataset, limit=None)
        assert len(run.records) == len(dataset)

    def test_errors_list_matches_records(self, dataset):
        run = evaluate(FixedGuess(Point(1, 1)), dataset)
        assert len(run.errors()) == len(run.records)

    def test_negative_limit_rejected(self, dataset):
        # limit=-1 used to slice observations[:-1], silently evaluating
        # all-but-the-last entry; the documented contract is "0 means
        # none", so negatives must raise.
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="limit must be >= 0"):
            evaluate(PerfectOracle(), dataset, limit=-1)
        with pytest.raises(ConfigurationError, match="limit must be >= 0"):
            evaluate(PerfectOracle(), dataset, limit=-len(dataset))


class TestParallelEvaluate:
    def test_records_identical_to_serial(self, dataset):
        guess = Point(0.2, -0.4)
        serial = evaluate(FixedGuess(guess), dataset)
        parallel = evaluate(FixedGuess(guess), dataset, workers=4)
        assert [r.error_m for r in serial.records] == [
            r.error_m for r in parallel.records
        ]
        assert [r.truth for r in serial.records] == [
            r.truth for r in parallel.records
        ]

    def test_failures_preserved_in_order(self, dataset):
        run = evaluate(AlwaysFails(), dataset, workers=3)
        assert run.num_failed == len(dataset)
        assert run.failure_reasons() == ["nope"] * len(dataset)

    def test_invalid_worker_count(self, dataset):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            evaluate(PerfectOracle(), dataset, workers=0)
        with pytest.raises(ConfigurationError):
            evaluate(PerfectOracle(), dataset, workers=-2)

    def test_worker_metrics_merged(self, dataset):
        from repro.obs import observed

        with observed() as obs:
            evaluate(PerfectOracle(), dataset, workers=3)
        assert obs.metrics.get("eval.fixes_total").value == len(dataset)
        assert obs.metrics.get("eval.fix_latency_s").count == len(dataset)

    def test_worker_failure_counters_merged(self, dataset):
        from repro.obs import observed

        with observed() as obs:
            evaluate(AlwaysFails(), dataset, workers=4)
        counter = obs.metrics.get("eval.failures.LocalizationError")
        assert counter is not None and counter.value == len(dataset)

    def test_fix_spans_recorded_from_worker_threads(self, dataset):
        from repro.obs import observed

        with observed() as obs:
            evaluate(PerfectOracle(), dataset, workers=2, label="par")
        fixes = [s for s in obs.tracer.finished() if s.name == "fix"]
        assert len(fixes) == len(dataset)
        assert {s.attributes["index"] for s in fixes} == set(
            range(len(dataset))
        )

    def test_anchor_subsets_parallel_matches_serial(self, dataset):
        serial = evaluate_anchor_subsets(
            FixedGuess(Point(0.1, 0.1)), dataset, subset_size=3
        )
        parallel = evaluate_anchor_subsets(
            FixedGuess(Point(0.1, 0.1)), dataset, subset_size=3, workers=4
        )
        assert [r.error_m for r in serial.records] == [
            r.error_m for r in parallel.records
        ]

    def test_anchor_subsets_limit_zero(self, dataset):
        run = evaluate_anchor_subsets(
            PerfectOracle(), dataset, subset_size=3, limit=0
        )
        assert run.records == []

    def test_anchor_subsets_negative_limit_rejected(self, dataset):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="limit must be >= 0"):
            evaluate_anchor_subsets(
                PerfectOracle(), dataset, subset_size=3, limit=-1
            )

    def test_anchor_subsets_batch_size_rejected(self, dataset):
        # Sub-fixes evaluate different anchor geometries, so a batched
        # Eq. 17 pass has nothing to share; asking for one must be a
        # loud error rather than a silently ignored knob.
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="cannot batch"):
            evaluate_anchor_subsets(
                PerfectOracle(), dataset, subset_size=3, batch_size=4
            )


class FailsForSmallSubsets:
    """Succeeds on the full anchor set, raises on any strict subset."""

    def __init__(self, full_size, point):
        self._full_size = full_size
        self._point = point

    def locate(self, observations, keep_map=True):
        if observations.num_anchors < self._full_size:
            raise LocalizationError(
                f"only {observations.num_anchors} anchors"
            )
        guess = self._point

        class Result:
            position = guess

        return Result()


class TestFailureReasons:
    def test_failure_reason_attached(self, dataset):
        run = evaluate(AlwaysFails(), dataset)
        assert all(r.failure_reason == "nope" for r in run.records)
        assert run.failure_reasons() == ["nope"] * len(dataset)

    def test_success_has_no_reason(self, dataset):
        run = evaluate(PerfectOracle(), dataset)
        assert run.failure_reasons() == [None] * len(dataset)

    def test_reason_round_trips_through_stats(self, dataset):
        run = evaluate(AlwaysFails(), dataset)
        before = run.failure_reasons()
        run.stats(failure_error_m=5.0)  # must not mutate the records
        assert run.failure_reasons() == before
        assert [r.error_m for r in run.records] == [float("inf")] * len(
            dataset
        )

    def test_failures_counted_by_exception_type(self, dataset):
        from repro.obs import observed

        with observed() as obs:
            evaluate(AlwaysFails(), dataset)
        counter = obs.metrics.get("eval.failures.LocalizationError")
        assert counter is not None and counter.value == len(dataset)

    def test_fix_latency_histogram_populated(self, dataset):
        from repro.obs import observed

        with observed() as obs:
            evaluate(PerfectOracle(), dataset)
        latency = obs.metrics.get("eval.fix_latency_s")
        assert latency.count == len(dataset)
        assert latency.percentile(50) <= latency.percentile(95)
        assert obs.metrics.get("eval.fixes_total").value == len(dataset)

    def test_fix_spans_recorded(self, dataset):
        from repro.obs import observed

        with observed() as obs:
            evaluate(PerfectOracle(), dataset, label="oracle")
        fixes = [s for s in obs.tracer.finished() if s.name == "fix"]
        assert len(fixes) == len(dataset)
        assert fixes[0].attributes["label"] == "oracle"


class TestAnchorSubsets:
    def test_oracle_still_zero(self, dataset):
        run = evaluate_anchor_subsets(PerfectOracle(), dataset, subset_size=3)
        assert run.stats().median_m() == 0.0

    def test_subset_sizes_passed_down(self, dataset):
        sizes = []

        class Spy:
            def locate(self, observations, keep_map=True):
                sizes.append(observations.num_anchors)

                class Result:
                    position = observations.ground_truth

                return Result()

        evaluate_anchor_subsets(Spy(), dataset, subset_size=3, limit=1)
        # 3 subsets of size 3 containing the master, out of 4 anchors.
        assert sizes == [3, 3, 3]

    def test_two_anchor_subsets(self, dataset):
        run = evaluate_anchor_subsets(
            PerfectOracle(), dataset, subset_size=2, limit=2
        )
        assert len(run.records) == 2

    def test_no_estimate_leak_when_all_subsets_fail(self, dataset):
        run = evaluate_anchor_subsets(
            AlwaysFails(), dataset, subset_size=3, limit=2
        )
        for record in run.records:
            assert record.estimate is None
            assert record.error_m == float("inf")
            assert record.failure_reason == "nope"
        assert run.num_failed == 2

    def test_aggregate_record_has_no_single_estimate(self, dataset):
        # Subsets disagree (FixedGuess vs truth distances differ per
        # subset only through the shared guess -- use a localizer whose
        # error varies per subset instead): the oracle gives identical
        # zero errors, so the mean equals each subset error and an
        # estimate IS reported; a fixed guess gives equal errors too.
        # Build a localizer with per-call jitter to force disagreement.
        class Drifting:
            def __init__(self):
                self.calls = 0

            def locate(self, observations, keep_map=True):
                self.calls += 1
                offset = 0.1 * self.calls
                guess = Point(offset, 0.0)

                class Result:
                    position = guess

                return Result()

        run = evaluate_anchor_subsets(
            Drifting(), dataset, subset_size=3, limit=1
        )
        record = run.records[0]
        # Three different subset errors: the mean matches none of them,
        # so no single subset's estimate may masquerade as "the" fix.
        assert record.estimate is None
        assert np.isfinite(record.error_m)
        assert run.num_failed == 0

    def test_single_surviving_subset_estimate_is_reported(self, dataset):
        # One subset (the full set is never evaluated here) succeeds:
        # subset_size equals the anchor count, so there is exactly one
        # subset and its estimate must be reported as-is.
        guess = Point(0.3, -0.2)
        full = dataset.observations[0].num_anchors
        run = evaluate_anchor_subsets(
            FixedGuess(guess), dataset, subset_size=full, limit=1
        )
        record = run.records[0]
        assert record.estimate is not None
        assert record.estimate.x == guess.x
        assert record.error_m == pytest.approx(
            (record.truth - guess).norm()
        )

    def test_subset_failures_counted(self, dataset):
        from repro.obs import observed

        full = dataset.observations[0].num_anchors
        localizer = FailsForSmallSubsets(full, Point(0, 0))
        with observed() as obs:
            run = evaluate_anchor_subsets(
                localizer, dataset, subset_size=full - 1, limit=2
            )
        # All (full-1)-sized subsets fail: 3 subsets per entry, 2 entries.
        assert obs.metrics.get("eval.subset_failures").value == 6
        assert all(r.error_m == float("inf") for r in run.records)
        assert all(
            r.failure_reason is not None for r in run.records
        )


class TestParallelSpanPropagation:
    def test_fix_spans_parent_under_evaluate_root(self, dataset):
        from repro.obs import observed

        with observed() as obs:
            with obs.span("session") as session:
                evaluate(PerfectOracle(), dataset, workers=3)
        spans = obs.tracer.finished()
        roots = [s for s in spans if s.name == "evaluate"]
        assert len(roots) == 1
        assert roots[0].parent_id == session.span_id
        fixes = [s for s in spans if s.name == "fix"]
        assert len(fixes) == len(dataset)
        # Per-fix spans merge back under the evaluate root even though
        # workers ran them: the parent id crossed the pool boundary as a
        # SpanHandle, not as the live Span object.
        assert {s.parent_id for s in fixes} == {roots[0].span_id}
        assert {s.depth for s in fixes} == {roots[0].depth + 1}
        # Workers really ran the fixes, yet parentage survived the hop.
        assert len({s.thread for s in fixes}) >= 1

    def test_serial_and_parallel_same_span_tree_shape(self, dataset):
        from repro.obs import observed

        def tree(workers):
            with observed() as obs:
                with obs.span("session"):
                    evaluate(PerfectOracle(), dataset, workers=workers)
            return sorted(
                (s.name, s.depth)
                for s in obs.tracer.finished()
            )

        assert tree(1) == tree(4)


class TestDiagnosticsCapture:
    @pytest.fixture(scope="class")
    def bloc(self):
        from repro import BlocConfig, BlocLocalizer

        return BlocLocalizer(config=BlocConfig(grid_resolution_m=0.15))

    @pytest.fixture(scope="class")
    def small_dataset(self):
        return build_dataset(
            open_room_testbed(), num_positions=3, seed=21
        )

    def test_stub_localizer_collects_but_writes_nothing(
        self, dataset, tmp_path
    ):
        from repro.sim import DiagnosticsCapture

        capture = DiagnosticsCapture(directory=tmp_path, worst_n=2)
        run = evaluate(PerfectOracle(), dataset, capture=capture)
        assert run.num_failed == 0
        # Stubs expose no config/engine, so nothing can be bundled ...
        assert capture.written == []
        assert list(tmp_path.iterdir()) == []
        # ... but collection itself still happened (without diagnostics).
        assert capture.diagnostics_for(0) is None

    def test_bloc_writes_worst_n_bundles(
        self, bloc, small_dataset, tmp_path
    ):
        from repro.obs import load_fix_bundle
        from repro.sim import DiagnosticsCapture

        capture = DiagnosticsCapture(directory=tmp_path, worst_n=2)
        run = evaluate(bloc, small_dataset, label="BLoc", capture=capture)
        assert len(capture.written) == 2
        errors = [r.error_m for r in run.records]
        worst = sorted(
            range(len(errors)), key=lambda i: errors[i], reverse=True
        )[:2]
        for path in capture.written:
            assert path.exists()
            bundle = load_fix_bundle(path)
            assert bundle.fix_index in worst
            assert bundle.label == "BLoc"
            assert bundle.diagnostics is not None
            assert bundle.diagnostics.stage_reached == "located"
            assert bundle.error_m == pytest.approx(
                errors[bundle.fix_index]
            )

    def test_capture_feeds_health_monitor_every_fix(
        self, bloc, small_dataset
    ):
        from repro.obs import AnchorHealthMonitor
        from repro.sim import DiagnosticsCapture

        monitor = AnchorHealthMonitor()
        capture = DiagnosticsCapture(health=monitor)
        evaluate(bloc, small_dataset, capture=capture)
        rows = monitor.summary_rows()
        assert len(rows) == small_dataset.observations[0].num_anchors
        assert all(row[1] == str(len(small_dataset)) for row in rows)

    def test_failed_fixes_bundled_with_reason(
        self, bloc, small_dataset, tmp_path
    ):
        from repro.obs import load_fix_bundle
        from repro.sim import DiagnosticsCapture

        class BrokenBloc:
            """Real BLoc config/engine, but every fix fails."""

            def __init__(self, inner):
                self.config = inner.config
                self.engine = inner.engine
                self.bounds = getattr(inner, "bounds", None)

            def locate(self, observations, keep_map=True,
                       diagnostics=False):
                raise LocalizationError("forced failure")

        capture = DiagnosticsCapture(
            directory=tmp_path, worst_n=0, capture_failures=True
        )
        run = evaluate(
            BrokenBloc(bloc), small_dataset, label="broken",
            capture=capture,
        )
        assert run.num_failed == len(small_dataset)
        assert len(capture.written) == len(small_dataset)
        bundle = load_fix_bundle(capture.written[0])
        assert bundle.failure_reason == "forced failure"
        assert bundle.estimate_xy is None
        assert bundle.error_m is None

    def test_parallel_capture_matches_serial(
        self, bloc, small_dataset, tmp_path
    ):
        from repro.sim import DiagnosticsCapture

        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial = DiagnosticsCapture(directory=serial_dir, worst_n=1)
        parallel = DiagnosticsCapture(directory=parallel_dir, worst_n=1)
        evaluate(bloc, small_dataset, label="x", capture=serial)
        evaluate(
            bloc, small_dataset, label="x", capture=parallel, workers=3
        )
        assert [p.name for p in serial.written] == [
            p.name for p in parallel.written
        ]
        assert (
            serial.written[0].read_bytes()
            == parallel.written[0].read_bytes()
        )

    def test_bundle_counter_incremented_under_observer(
        self, bloc, small_dataset, tmp_path
    ):
        from repro.obs import observed
        from repro.sim import DiagnosticsCapture

        capture = DiagnosticsCapture(directory=tmp_path, worst_n=2)
        with observed() as obs:
            evaluate(bloc, small_dataset, capture=capture)
        counter = obs.metrics.get("diag.bundles_written")
        assert counter is not None and counter.value == 2
