"""Tests for repro.sim.runner: the evaluation sweep driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import LocalizationError
from repro.sim.dataset import build_dataset
from repro.sim.runner import evaluate, evaluate_anchor_subsets
from repro.sim.testbed import open_room_testbed
from repro.utils.geometry2d import Point


class PerfectOracle:
    """A localizer that returns the ground truth (for runner testing)."""

    def locate(self, observations, keep_map=True):
        class Result:
            position = observations.ground_truth

        return Result()


class FixedGuess:
    def __init__(self, point):
        self._point = point

    def locate(self, observations, keep_map=True):
        guess = self._point

        class Result:
            position = guess

        return Result()


class AlwaysFails:
    def locate(self, observations, keep_map=True):
        raise LocalizationError("nope")


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(open_room_testbed(), num_positions=5, seed=13)


class TestEvaluate:
    def test_oracle_zero_error(self, dataset):
        run = evaluate(PerfectOracle(), dataset, label="oracle")
        assert run.stats().median_m() == 0.0
        assert run.num_failed == 0

    def test_fixed_guess_errors_match_geometry(self, dataset):
        guess = Point(0.0, 0.0)
        run = evaluate(FixedGuess(guess), dataset)
        for record in run.records:
            assert record.error_m == pytest.approx(
                (record.truth - guess).norm()
            )

    def test_failures_recorded_not_raised(self, dataset):
        run = evaluate(AlwaysFails(), dataset)
        assert run.num_failed == len(dataset)
        stats = run.stats(failure_error_m=7.0)
        assert stats.median_m() == 7.0

    def test_transform_applied(self, dataset):
        seen = []

        class Spy:
            def locate(self, observations, keep_map=True):
                seen.append(observations.num_antennas)

                class Result:
                    position = observations.ground_truth

                return Result()

        evaluate(Spy(), dataset, transform=lambda o: o.select_antennas(2))
        assert set(seen) == {2}

    def test_limit(self, dataset):
        run = evaluate(PerfectOracle(), dataset, limit=2)
        assert len(run.records) == 2

    def test_errors_list_matches_records(self, dataset):
        run = evaluate(FixedGuess(Point(1, 1)), dataset)
        assert len(run.errors()) == len(run.records)


class TestAnchorSubsets:
    def test_oracle_still_zero(self, dataset):
        run = evaluate_anchor_subsets(PerfectOracle(), dataset, subset_size=3)
        assert run.stats().median_m() == 0.0

    def test_subset_sizes_passed_down(self, dataset):
        sizes = []

        class Spy:
            def locate(self, observations, keep_map=True):
                sizes.append(observations.num_anchors)

                class Result:
                    position = observations.ground_truth

                return Result()

        evaluate_anchor_subsets(Spy(), dataset, subset_size=3, limit=1)
        # 3 subsets of size 3 containing the master, out of 4 anchors.
        assert sizes == [3, 3, 3]

    def test_two_anchor_subsets(self, dataset):
        run = evaluate_anchor_subsets(
            PerfectOracle(), dataset, subset_size=2, limit=2
        )
        assert len(run.records) == 2
