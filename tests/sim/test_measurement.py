"""Tests for repro.sim.measurement: the two campaign fidelities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ble.channels import ChannelMap
from repro.sim.measurement import ChannelMeasurementModel, IqMeasurementModel
from repro.sim.testbed import open_room_testbed
from repro.utils.geometry2d import Point


@pytest.fixture(scope="module")
def los_testbed_local():
    return open_room_testbed()


class TestChannelFidelity:
    def test_shapes(self, los_testbed_local):
        model = ChannelMeasurementModel(testbed=los_testbed_local, seed=1)
        obs = model.measure(Point(0.4, 0.2))
        assert obs.tag_to_anchor.shape == (4, 4, 37)
        assert obs.ground_truth == Point(0.4, 0.2)
        assert np.all(np.isfinite(obs.tag_to_anchor))

    def test_master_row_empty_in_master_to_anchor(self, los_testbed_local):
        model = ChannelMeasurementModel(testbed=los_testbed_local, seed=1)
        obs = model.measure(Point(0.4, 0.2))
        assert np.allclose(obs.master_to_anchor[obs.master_index], 0.0)

    def test_deterministic(self, los_testbed_local):
        a = ChannelMeasurementModel(testbed=los_testbed_local, seed=5).measure(
            Point(0.1, 0.1)
        )
        b = ChannelMeasurementModel(testbed=los_testbed_local, seed=5).measure(
            Point(0.1, 0.1)
        )
        assert np.array_equal(a.tag_to_anchor, b.tag_to_anchor)

    def test_round_index_decorrelates(self, los_testbed_local):
        model = ChannelMeasurementModel(testbed=los_testbed_local, seed=5)
        a = model.measure(Point(0.1, 0.1), round_index=0)
        b = model.measure(Point(0.1, 0.1), round_index=1)
        assert not np.allclose(a.tag_to_anchor, b.tag_to_anchor)

    def test_channel_map_restricts_bands(self, los_testbed_local):
        model = ChannelMeasurementModel(
            testbed=los_testbed_local,
            channel_map=ChannelMap((0, 10, 20)),
            seed=1,
        )
        obs = model.measure(Point(0, 0))
        assert obs.num_bands == 3

    def test_phase_offsets_garble_raw_channels(self, los_testbed_local):
        """Raw per-band phase must look random across bands (the paper's
        Section 5.1 problem)."""
        model = ChannelMeasurementModel(
            testbed=los_testbed_local, seed=2, snr_db=60.0
        )
        obs = model.measure(Point(0.5, 0.5))
        increments = np.diff(np.angle(obs.tag_to_anchor[1, 0, :]))
        wrapped = np.angle(np.exp(1j * increments))
        assert np.std(wrapped) > 1.0  # near-uniform spread

    def test_calibration_error_fixed_per_deployment(self, los_testbed_local):
        model = ChannelMeasurementModel(
            testbed=los_testbed_local, seed=3, calibration_error_m=0.05
        )
        first = model._element_positions()
        second = model._element_positions()
        assert first is second


class TestIqFidelity:
    def test_produces_observations(self, los_testbed_local):
        model = IqMeasurementModel(
            testbed=los_testbed_local,
            seed=4,
            snr_db=35.0,
            channel_map=ChannelMap((3, 18, 33)),
        )
        obs = model.measure(Point(0.6, -0.4))
        assert obs.num_bands == 3
        assert np.all(np.abs(obs.tag_to_anchor) > 0)

    def test_channels_match_physical_truth(self, los_testbed_local):
        """IQ-fidelity CSI must agree with the direct channel synthesis
        (the substitution-validation test promised in DESIGN.md)."""
        channel_map = ChannelMap((5, 25))
        iq_model = IqMeasurementModel(
            testbed=los_testbed_local,
            seed=6,
            snr_db=60.0,
            channel_map=channel_map,
        )
        tag = Point(0.8, 0.6)
        obs = iq_model.measure(tag)
        simulator = los_testbed_local.channel_simulator
        for k, frequency in enumerate(obs.frequencies_hz):
            for i, anchor in enumerate(los_testbed_local.anchors):
                truth = simulator.channels_to_anchor(
                    tag, anchor, [frequency]
                )[:, 0]
                measured = obs.tag_to_anchor[i, :, k]
                # Oscillator offsets rotate all antennas of one anchor by
                # one common phasor: compare ratios.
                ratio = measured / truth
                assert np.allclose(
                    np.abs(ratio), 1.0, atol=0.1
                ), f"magnitude mismatch at anchor {i}, band {k}"
                spread = np.std(np.angle(ratio * np.conj(ratio[0])))
                assert spread < 0.1, (
                    f"inter-antenna phase mismatch at anchor {i}, band {k}"
                )
